package explorer

import (
	"math"
	"sync"
	"testing"

	"coldtall/internal/cell"
	"coldtall/internal/cryo"
	"coldtall/internal/dram"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// shared explorer: characterizations are cached, so tests reuse one.
var (
	sharedOnce sync.Once
	sharedExp  *Explorer
)

func exp(t *testing.T) *Explorer {
	t.Helper()
	sharedOnce.Do(func() { sharedExp = New() })
	return sharedExp
}

func traffic(t *testing.T, name string) workload.Traffic {
	t.Helper()
	tr, err := workload.StaticTrafficFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func eval(t *testing.T, p DesignPoint, bench string) Evaluation {
	t.Helper()
	ev, err := exp(t).Evaluate(p, traffic(t, bench))
	if err != nil {
		t.Fatalf("Evaluate(%s, %s): %v", p.Label, bench, err)
	}
	return ev
}

func stacked(t *testing.T, tech cell.Technology, corner cell.Corner, dies int) DesignPoint {
	t.Helper()
	p, err := Stacked(tech, corner, dies)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// --- Construction and validation.

func TestDesignPointValidate(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	bad := Baseline()
	bad.Label = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty label should fail")
	}
	bad = Baseline()
	bad.Temperature = 2
	if err := bad.Validate(); err == nil {
		t.Error("2 K should fail (below the deep-cryo floor)")
	}
	bad = Baseline()
	bad.FrequencyHz = 1e6
	if err := bad.Validate(); err == nil {
		t.Error("1 MHz clock should fail (below MinFrequencyHz)")
	}
	bad = Baseline()
	bad.Dies = 3
	if err := bad.Validate(); err == nil {
		t.Error("3 dies should fail")
	}
}

func TestStandardPointSets(t *testing.T) {
	sweep := CryoSweep(cryo.EffectiveTemperatures())
	if len(sweep) != 16 {
		t.Errorf("cryo sweep has %d points, want 16 (8 temps x 2 cells)", len(sweep))
	}
	envm, err := ENVMSweep()
	if err != nil {
		t.Fatal(err)
	}
	// 4 die counts x (SRAM + 3 technologies x 2 corners) = 28.
	if len(envm) != 28 {
		t.Errorf("eNVM sweep has %d points, want 28", len(envm))
	}
	for _, p := range append(sweep, envm...) {
		if err := p.Validate(); err != nil {
			t.Errorf("point %s invalid: %v", p.Label, err)
		}
	}
	cands, err := TableIICandidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3+15 {
		t.Errorf("Table II candidates = %d, want 18", len(cands))
	}
}

func TestWithCoolingValidates(t *testing.T) {
	if _, err := WithCooling(cryo.Cooling{Class: cryo.Cooler1kW, ThresholdK: 0}); err == nil {
		t.Error("invalid cooling should be rejected")
	}
	e, err := WithCooling(cryo.Cooling{Class: cryo.Cooler10W, ThresholdK: 200})
	if err != nil || e.Cooling.Class != cryo.Cooler10W {
		t.Errorf("WithCooling failed: %v", err)
	}
}

// --- Fig. 1: SRAM power vs temperature for namd.

func TestFig1NamdTemperatureSweep(t *testing.T) {
	base := eval(t, Baseline(), ReferenceBenchmark)
	cold := eval(t, SRAMAt(tech.TempCryo77), ReferenceBenchmark)

	// ">50x reduction by operating at 77 K" (device power, no cooling).
	if r := base.DevicePower / cold.DevicePower; r < 50 || r > 200 {
		t.Errorf("77K namd device-power reduction %.1fx, want 50-200x", r)
	}
	// "Even including a conservative estimate of cooling power overhead,
	// there is more than a 50% reduction in total LLC power."
	if r := base.TotalPower / cold.TotalPower; r < 2 {
		t.Errorf("77K namd total-power reduction incl cooling %.1fx, want > 2x", r)
	}
	// Power falls monotonically with temperature.
	prev := math.Inf(1)
	for i := len(cryo.EffectiveTemperatures()) - 1; i >= 0; i-- {
		temp := cryo.EffectiveTemperatures()[i]
		ev := eval(t, SRAMAt(temp), ReferenceBenchmark)
		if ev.DevicePower >= prev {
			t.Fatalf("device power not monotonic at %g K", temp)
		}
		prev = ev.DevicePower
	}
}

// --- Fig. 4: namd vs leela, cryo vs 350 K, both cell technologies.

func TestFig4NamdEDRAMCoolingThwarted(t *testing.T) {
	// "The potential benefits of cryogenic operation of an eDRAM cache
	// for [namd] are thwarted by the cooling power overhead compared to
	// 350K eDRAM operation due to the huge LLC accesses of the workload."
	warm := eval(t, EDRAMAt(tech.TempHot350), "namd")
	cold := eval(t, EDRAMAt(tech.TempCryo77), "namd")
	if cold.TotalPower <= warm.TotalPower {
		t.Errorf("cooled 77K eDRAM (%.4f W) should lose to 350K eDRAM (%.4f W) on namd",
			cold.TotalPower, warm.TotalPower)
	}
	// But SRAM still benefits (~3x in the paper's Fig. 4).
	warmS := eval(t, SRAMAt(tech.TempHot350), "namd")
	coldS := eval(t, SRAMAt(tech.TempCryo77), "namd")
	if r := warmS.TotalPower / coldS.TotalPower; r < 2 || r > 15 {
		t.Errorf("cooled 77K SRAM advantage on namd %.1fx, want 2-15x (paper ~3x)", r)
	}
}

func TestFig4LeelaCryoWinsBothTechnologies(t *testing.T) {
	// "For distinct benchmark memory access patterns, like leela,
	// cryogenic total operating power is advantageous for both LLC
	// technologies."
	for _, mk := range []func(float64) DesignPoint{SRAMAt, EDRAMAt} {
		warm := eval(t, mk(tech.TempHot350), "leela")
		cold := eval(t, mk(tech.TempCryo77), "leela")
		if cold.TotalPower >= warm.TotalPower {
			t.Errorf("%s: cooled cryo should win on leela", mk(77).Label)
		}
	}
}

// --- Fig. 5: full-suite cryo sweep.

func TestFig5EDRAMLowestDevicePowerEverywhere(t *testing.T) {
	// "identifying 77K 3T-eDRAM as the lowest power option for all
	// benchmarks" (device power, pre-cooling).
	for _, tr := range workload.StaticTraffic() {
		e77, err := exp(t).Evaluate(EDRAMAt(tech.TempCryo77), tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, rival := range []DesignPoint{SRAMAt(tech.TempCryo77), SRAMAt(tech.TempHot350), EDRAMAt(tech.TempHot350)} {
			rv, err := exp(t).Evaluate(rival, tr)
			if err != nil {
				t.Fatal(err)
			}
			if e77.DevicePower >= rv.DevicePower {
				t.Errorf("%s: 77K eDRAM device power should beat %s", tr.Benchmark, rival.Label)
			}
		}
	}
}

func TestFig5LowTrafficHugeCooledWin(t *testing.T) {
	// "For read traffic less than 1e4 [the povray band], 77K 3T-eDRAM is
	// preferred with more than a 2,500x reduction in power compared to
	// the baseline even taking into account cooling overhead."
	base := eval(t, Baseline(), "povray")
	cold := eval(t, EDRAMAt(tech.TempCryo77), "povray")
	if r := base.TotalPower / cold.TotalPower; r < 2500 {
		t.Errorf("cooled 77K eDRAM win on povray = %.0fx, want > 2500x", r)
	}
}

func TestFig5BandEdgeCooledWin(t *testing.T) {
	// At the top of the mid band the cooled advantage compresses to the
	// tens (paper: "20-30x power reduction including cooling").
	base := eval(t, Baseline(), "xalancbmk")
	cold := eval(t, EDRAMAt(tech.TempCryo77), "xalancbmk")
	if r := base.TotalPower / cold.TotalPower; r < 10 || r > 60 {
		t.Errorf("cooled 77K eDRAM win at band edge = %.1fx, want 10-60x (paper 20-30x)", r)
	}
}

func TestFig5HighTrafficCooledCryoLoses(t *testing.T) {
	// "For high-bandwidth benchmarks, at read access rates about 1e8/s,
	// the relative power of cryogenic operation and cooling well exceeds
	// the 350K operating baseline."
	for _, bench := range []string{"lbm", "mcf"} {
		base := eval(t, Baseline(), bench)
		cold := eval(t, EDRAMAt(tech.TempCryo77), bench)
		if cold.TotalPower <= base.TotalPower {
			t.Errorf("%s: cooled 77K eDRAM (%.3f W) should exceed 350K SRAM (%.3f W)",
				bench, cold.TotalPower, base.TotalPower)
		}
	}
	// While below the crossover it still wins.
	base := eval(t, Baseline(), "namd")
	cold := eval(t, EDRAMAt(tech.TempCryo77), "namd")
	if cold.TotalPower >= base.TotalPower {
		t.Error("namd sits below the cooled-cryo crossover and should still win")
	}
}

func TestFig5CryoLatencyAdvantage(t *testing.T) {
	// "77K 3T-eDRAM and 77K SRAM exhibit 2-4x lower aggregate LLC
	// latency than at 350K"; eDRAM always edges SRAM at 77 K.
	for _, tr := range workload.StaticTraffic() {
		s77, _ := exp(t).Evaluate(SRAMAt(tech.TempCryo77), tr)
		s350, _ := exp(t).Evaluate(SRAMAt(tech.TempHot350), tr)
		e77, _ := exp(t).Evaluate(EDRAMAt(tech.TempCryo77), tr)
		e350, _ := exp(t).Evaluate(EDRAMAt(tech.TempHot350), tr)
		if r := s350.AggregateLatency / s77.AggregateLatency; r < 2 || r > 6 {
			t.Errorf("%s: SRAM 77K latency gain %.1fx, want 2-6x", tr.Benchmark, r)
		}
		if r := e350.AggregateLatency / e77.AggregateLatency; r < 2 || r > 6 {
			t.Errorf("%s: eDRAM 77K latency gain %.1fx, want 2-6x", tr.Benchmark, r)
		}
		if e77.AggregateLatency >= s77.AggregateLatency {
			t.Errorf("%s: 77K eDRAM should edge 77K SRAM on latency", tr.Benchmark)
		}
	}
}

// --- Fig. 7: eNVM application-level comparisons.

func TestFig7ENVMPowerAdvantageAtModestTraffic(t *testing.T) {
	// eNVMs sit 2-10x (optimistic: somewhat more) below the SRAM
	// baseline for sub-1e7 read traffic.
	for _, bench := range []string{"leela", "x264", "blender"} {
		base := eval(t, Baseline(), bench)
		for _, tc := range []cell.Technology{cell.PCM, cell.STTRAM, cell.RRAM} {
			pess := eval(t, stacked(t, tc, cell.Pessimistic, 1), bench)
			if r := base.TotalPower / pess.TotalPower; r < 2 || r > 15 {
				t.Errorf("%s pessimistic %v advantage %.1fx, want 2-15x", bench, tc, r)
			}
			opt := eval(t, stacked(t, tc, cell.Optimistic, 1), bench)
			if opt.TotalPower >= pess.TotalPower {
				t.Errorf("%s: optimistic %v should beat pessimistic", bench, tc)
			}
		}
	}
}

func TestFig7HighTraffic8DiePCMWins(t *testing.T) {
	// "For read accesses greater than 1e7, 8-die PCM emerges as the
	// lowest power technology."
	p8 := stacked(t, cell.PCM, cell.Optimistic, 8)
	for _, bench := range []string{"mcf", "lbm", "bwaves"} {
		win := eval(t, p8, bench)
		rivals := []DesignPoint{Baseline()}
		for _, dies := range []int{1, 2, 4} {
			rivals = append(rivals, stacked(t, cell.PCM, cell.Optimistic, dies))
		}
		for _, tc := range []cell.Technology{cell.STTRAM, cell.RRAM} {
			rivals = append(rivals, stacked(t, tc, cell.Optimistic, 8))
		}
		rivals = append(rivals, stacked(t, cell.SRAM, cell.Optimistic, 8))
		for _, rv := range rivals {
			ev := eval(t, rv, bench)
			if win.TotalPower >= ev.TotalPower {
				t.Errorf("%s: 8-die PCM (%.4f W) should beat %s (%.4f W)",
					bench, win.TotalPower, rv.Label, ev.TotalPower)
			}
		}
	}
}

func TestFig7LowTrafficLowerStackingWins(t *testing.T) {
	// "In lower-traffic scenarios, lower stacking is better for power
	// efficiency."
	one := eval(t, stacked(t, cell.PCM, cell.Optimistic, 1), "leela")
	eight := eval(t, stacked(t, cell.PCM, cell.Optimistic, 8), "leela")
	if one.TotalPower >= eight.TotalPower {
		t.Error("1-die PCM should beat 8-die PCM at leela's traffic")
	}
}

func TestFig7STT8LowestLatencyExceptMcf(t *testing.T) {
	// "[The lowest aggregate latency] is 8-die STT-RAM for all
	// benchmarks except mcf (the lowest write traffic)", where 8-die PCM
	// (the read-latency winner) takes over.
	t8 := stacked(t, cell.STTRAM, cell.Optimistic, 8)
	p8 := stacked(t, cell.PCM, cell.Optimistic, 8)
	envm, err := ENVMSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range workload.StaticTraffic() {
		evT8, _ := exp(t).Evaluate(t8, tr)
		evP8, _ := exp(t).Evaluate(p8, tr)
		best := evT8
		if tr.Benchmark == "mcf" {
			best = evP8
		}
		for _, p := range envm {
			ev, err := exp(t).Evaluate(p, tr)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Point.Key() == best.Point.Key() {
				continue
			}
			if best.AggregateLatency > ev.AggregateLatency*(1+1e-12) {
				t.Errorf("%s: expected %s to lead, but %s has lower latency",
					tr.Benchmark, best.Point.Label, p.Label)
			}
		}
	}
}

func TestFig7PessimisticSlowdownAtHighWriteTraffic(t *testing.T) {
	// "PCM and STT-RAM with pessimistic underlying cell properties are
	// consistently higher latency than SRAM [at high write traffic] and
	// could thus introduce a negative performance impact."
	for _, tc := range []cell.Technology{cell.PCM, cell.STTRAM} {
		p := stacked(t, tc, cell.Pessimistic, 8)
		ev := eval(t, p, "lbm")
		if !ev.Slowdown {
			t.Errorf("pessimistic %v on lbm should flag a slowdown", tc)
		}
		base := eval(t, Baseline(), "lbm")
		if ev.AggregateLatency <= base.AggregateLatency {
			t.Errorf("pessimistic %v latency should exceed SRAM on lbm", tc)
		}
	}
	// Optimistic STT at modest traffic does not slow down.
	if ev := eval(t, stacked(t, cell.STTRAM, cell.Optimistic, 8), "leela"); ev.Slowdown {
		t.Error("optimistic 8-die STT should not slow leela down")
	}
}

// --- Table II.

func TestTableIIPowerColumn(t *testing.T) {
	e := exp(t)
	low, err := e.OptimalChoice(workload.BandLow, ObjPower)
	if err != nil {
		t.Fatal(err)
	}
	if low.Winner.Point.Cell.Tech != cell.EDRAM3T || low.Winner.Point.Temperature != 77 {
		t.Errorf("low-band power winner = %s, want 77K 3T-eDRAM", low.Winner.Point.Label)
	}
	if low.EnduranceConcern {
		t.Error("volatile low-band winner should raise no endurance concern")
	}

	mid, err := e.OptimalChoice(workload.BandMid, ObjPower)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Winner.Point.Cell.Tech != cell.PCM || mid.Winner.Point.Dies != 4 {
		t.Errorf("mid-band power winner = %s, want 4-die PCM", mid.Winner.Point.Label)
	}
	if !mid.EnduranceConcern || mid.Alternative == nil {
		t.Fatal("mid-band PCM winner should carry an endurance alternative")
	}
	if mid.Alternative.Point.Cell.Tech != cell.EDRAM3T || mid.Alternative.Point.Temperature != 77 {
		t.Errorf("mid-band alt = %s, want 77K 3T-eDRAM", mid.Alternative.Point.Label)
	}

	high, err := e.OptimalChoice(workload.BandHigh, ObjPower)
	if err != nil {
		t.Fatal(err)
	}
	if high.Winner.Point.Cell.Tech != cell.PCM || high.Winner.Point.Dies != 8 {
		t.Errorf("high-band power winner = %s, want 8-die PCM", high.Winner.Point.Label)
	}
	if high.Alternative == nil || high.Alternative.Point.Cell.Tech != cell.SRAM || high.Alternative.Point.Dies != 8 {
		t.Errorf("high-band alt should be 8-die SRAM, got %v", high.Alternative)
	}
}

func TestTableIIPerformanceColumn3D(t *testing.T) {
	// The paper's performance column (Destiny-family winners): 8-die STT
	// for the write-bearing bands, 8-die PCM for the read-dominated top.
	e := exp(t)
	for _, b := range []workload.Band{workload.BandLow, workload.BandMid} {
		c, err := e.Optimal3DChoice(b, ObjPerformance)
		if err != nil {
			t.Fatal(err)
		}
		if c.Winner.Point.Cell.Tech != cell.STTRAM || c.Winner.Point.Dies != 8 {
			t.Errorf("band %v 3D performance winner = %s, want 8-die STT", b, c.Winner.Point.Label)
		}
	}
	c, err := e.Optimal3DChoice(workload.BandHigh, ObjPerformance)
	if err != nil {
		t.Fatal(err)
	}
	if c.Winner.Point.Cell.Tech != cell.PCM || c.Winner.Point.Dies != 8 {
		t.Errorf("high-band 3D performance winner = %s, want 8-die PCM (mcf is read-dominated)", c.Winner.Point.Label)
	}
}

func TestTableIIUnifiedPerformanceIsCryo(t *testing.T) {
	// Documented deviation: in the unified model the cryogenic latency
	// advantage wins low/mid-band performance outright (see
	// EXPERIMENTS.md).
	c, err := exp(t).OptimalChoice(workload.BandMid, ObjPerformance)
	if err != nil {
		t.Fatal(err)
	}
	if c.Winner.Point.Temperature != 77 {
		t.Errorf("unified mid-band performance winner = %s, expected a 77K point", c.Winner.Point.Label)
	}
}

func TestTableIIAreaColumn(t *testing.T) {
	e := exp(t)
	for _, b := range workload.Bands() {
		c, err := e.OptimalChoice(b, ObjArea)
		if err != nil {
			t.Fatal(err)
		}
		if c.Winner.Point.Cell.Tech != cell.PCM || c.Winner.Point.Dies != 8 {
			t.Errorf("band %v area winner = %s, want 8-die PCM", b, c.Winner.Point.Label)
		}
		switch b {
		case workload.BandLow:
			if c.EnduranceConcern {
				t.Error("low band write traffic should not wear PCM out")
			}
		default:
			if c.Alternative == nil || c.Alternative.Point.Cell.Tech != cell.STTRAM {
				t.Errorf("band %v area alt should be 3D STT, got %v", b, c.Alternative)
			}
		}
	}
}

func TestTableIIFullGrid(t *testing.T) {
	choices, err := exp(t).TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 9 {
		t.Fatalf("Table II has %d cells, want 9 (3 bands x 3 objectives)", len(choices))
	}
	for _, c := range choices {
		if c.Winner.Point.Label == "" {
			t.Error("empty winner")
		}
		if c.Alternative != nil && c.Alternative.Point.Cell.Tech == c.Winner.Point.Cell.Tech {
			t.Error("alternative must differ in technology")
		}
	}
}

// --- Mechanics.

func TestEvaluationPowerAccounting(t *testing.T) {
	ev := eval(t, SRAMAt(tech.TempCryo77), "leela")
	if ev.CoolingPower <= 0 {
		t.Error("77K point must pay cooling power")
	}
	if math.Abs(ev.TotalPower-(ev.DevicePower+ev.CoolingPower)) > 1e-15 {
		t.Error("total power must equal device + cooling")
	}
	warm := eval(t, Baseline(), "leela")
	if warm.CoolingPower != 0 {
		t.Error("350K point must not pay cooling")
	}
	if warm.DevicePower <= warm.Array.LeakagePower {
		t.Error("device power must include dynamic energy")
	}
}

func TestLifetimeComputation(t *testing.T) {
	// SRAM never wears.
	if ev := eval(t, Baseline(), "lbm"); !math.IsInf(ev.LifetimeYears, 1) {
		t.Error("SRAM lifetime should be infinite")
	}
	// PCM wears faster under heavier write traffic.
	p1 := eval(t, stacked(t, cell.PCM, cell.Optimistic, 1), "lbm")
	p2 := eval(t, stacked(t, cell.PCM, cell.Optimistic, 1), "povray")
	if !(p1.LifetimeYears < p2.LifetimeYears) {
		t.Error("heavier write traffic should shorten lifetime")
	}
	if p1.LifetimeYears <= 0 || math.IsInf(p1.LifetimeYears, 1) {
		t.Errorf("PCM lifetime on lbm = %v, want finite positive", p1.LifetimeYears)
	}
}

func TestNormalizeAgainstBaseline(t *testing.T) {
	base, err := exp(t).BaselineEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	self := Normalize(base, base)
	for _, v := range []float64{self.RelPower, self.RelDevicePower, self.RelLatency, self.RelArea} {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("self-normalization = %v, want 1", v)
		}
	}
	cold := eval(t, SRAMAt(tech.TempCryo77), ReferenceBenchmark)
	rel := Normalize(cold, base)
	if rel.RelDevicePower >= 0.02 {
		t.Errorf("relative 77K device power %.4f, want << 1", rel.RelDevicePower)
	}
	// Iso-capacity SRAM: the EDP search may pick a slightly different
	// organization at 77 K, but the footprint stays essentially equal.
	if rel.RelArea < 0.95 || rel.RelArea > 1.05 {
		t.Errorf("iso-capacity SRAM area should normalize to ~1, got %g", rel.RelArea)
	}
}

func TestEvaluateAllShape(t *testing.T) {
	pts := []DesignPoint{Baseline(), SRAMAt(tech.TempCryo77)}
	trs := workload.StaticTraffic()[:3]
	grid, err := exp(t).EvaluateAll(pts, trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 3 {
		t.Fatalf("grid shape %dx%d, want 2x3", len(grid), len(grid[0]))
	}
	if grid[1][2].Point.Label != pts[1].Label || grid[1][2].Traffic.Benchmark != trs[2].Benchmark {
		t.Error("grid indexing broken")
	}
}

func TestCharacterizeCaches(t *testing.T) {
	e := New()
	a, err := e.Characterize(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Characterize(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache should return identical results")
	}
}

func TestEvaluateRejectsBadTraffic(t *testing.T) {
	bad := workload.Traffic{Benchmark: "x", ReadsPerSec: -1}
	if _, err := exp(t).Evaluate(Baseline(), bad); err == nil {
		t.Error("negative traffic should fail")
	}
}

func TestStackedUnknownTechnology(t *testing.T) {
	if _, err := Stacked(cell.Technology(99), cell.Optimistic, 2); err == nil {
		t.Error("unknown technology should fail")
	}
}

func TestCoolingSensitivityMonotonic(t *testing.T) {
	// Section III-C: larger cooling overheads (smaller coolers) only
	// raise the cryogenic total power.
	tr := traffic(t, "leela")
	prev := 0.0
	for _, cls := range cryo.Classes() {
		e, err := WithCooling(cryo.Cooling{Class: cls, ThresholdK: 200})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := e.Evaluate(EDRAMAt(tech.TempCryo77), tr)
		if err != nil {
			t.Fatal(err)
		}
		if ev.TotalPower <= prev {
			t.Fatalf("total power should grow with cooler overhead (%v)", cls)
		}
		prev = ev.TotalPower
	}
}

func TestEvaluationReliability(t *testing.T) {
	// The paper's endurance concern made quantitative: PCM's wear
	// lifetime at mid-band write traffic is single-digit years; STT's is
	// effectively unlimited; the cryogenic eDRAM has a retention tail
	// but no wear.
	pcm := eval(t, stacked(t, cell.PCM, cell.Optimistic, 4), "xalancbmk")
	repPCM, err := pcm.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if repPCM.WearLifetimeYears > 100 {
		t.Errorf("PCM wear lifetime %.1f years, want limited", repPCM.WearLifetimeYears)
	}
	stt := eval(t, stacked(t, cell.STTRAM, cell.Optimistic, 4), "xalancbmk")
	repSTT, err := stt.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if repSTT.WearLifetimeYears < 1e6 {
		t.Errorf("STT wear lifetime %.3g years, want unlimited-scale", repSTT.WearLifetimeYears)
	}
	if repSTT.SoftFIT <= repPCM.SoftFIT {
		t.Error("STT stochastic switching should dominate soft FIT")
	}
	edram := eval(t, EDRAMAt(tech.TempHot350), "xalancbmk")
	repE, err := edram.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if repE.RetentionWeakBitsPerRefresh <= 0 {
		t.Error("350K eDRAM should report a retention weak-bit tail")
	}
	// Cooling to 77 K shrinks the tail by orders of magnitude.
	edramCold := eval(t, EDRAMAt(tech.TempCryo77), "xalancbmk")
	repEC, err := edramCold.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if repEC.RetentionWeakBitsPerRefresh >= repE.RetentionWeakBitsPerRefresh {
		t.Error("cryogenic retention tail should shrink")
	}
}

func TestCapacityOverride(t *testing.T) {
	small := Baseline().WithCapacity(4 << 20)
	big := Baseline().WithCapacity(64 << 20)
	rs, err := exp(t).Characterize(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := exp(t).Characterize(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.FootprintM2 <= rs.FootprintM2 || rb.LeakagePower <= rs.LeakagePower {
		t.Error("larger LLC should be bigger and leakier")
	}
	if rb.ReadLatency <= rs.ReadLatency {
		t.Error("larger LLC should be slower")
	}
	if small.Label == big.Label || small.Key() == big.Key() {
		t.Error("capacity must distinguish points")
	}
	// The default (0) still means 16 MiB.
	def, err := exp(t).Characterize(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := exp(t).Characterize(Baseline().WithCapacity(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if def.FootprintM2 != mid.FootprintM2 {
		t.Error("explicit 16 MiB should equal the default")
	}
}

func TestContentionModel(t *testing.T) {
	// Low-traffic benchmarks leave the array essentially idle; the
	// pessimistic PCM's 250 ns write cycle saturates under lbm's stream.
	idle := eval(t, Baseline(), "povray")
	if idle.Utilization > 0.01 || idle.ContentionFactor > 1.01 {
		t.Errorf("povray should leave SRAM idle: rho=%.4f factor=%.3f",
			idle.Utilization, idle.ContentionFactor)
	}
	busy := eval(t, stacked(t, cell.PCM, cell.Pessimistic, 1), "lbm")
	if busy.Utilization <= idle.Utilization {
		t.Error("lbm should load the array more than povray")
	}
	if busy.ContentionFactor <= 1 {
		t.Error("contention factor must exceed 1 under load")
	}
	// The factor grows monotonically with utilization.
	mid := eval(t, Baseline(), "namd")
	high := eval(t, Baseline(), "lbm")
	if !(mid.ContentionFactor <= high.ContentionFactor) {
		t.Error("contention should grow with traffic")
	}
	// Saturated arrays cap at the reporting limit and flag a slowdown.
	if busy.Utilization >= 1 {
		if busy.ContentionFactor != 100 {
			t.Errorf("saturated factor = %g, want capped 100", busy.ContentionFactor)
		}
		if !busy.Slowdown {
			t.Error("saturation must flag a slowdown")
		}
	}
}

func TestSystemImpact(t *testing.T) {
	mem, err := dram.New(dram.DDR4(), 300)
	if err != nil {
		t.Fatal(err)
	}
	prof := func(name string) workload.Profile {
		p, err := workload.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// The baseline is its own reference.
	base, err := exp(t).SystemImpact(Baseline(), prof("namd"), mem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.RelIPC-1) > 1e-9 {
		t.Errorf("baseline RelIPC = %g, want 1", base.RelIPC)
	}
	if base.AMATSeconds <= 0 || base.CPI <= 0 {
		t.Error("non-positive AMAT/CPI")
	}
	if base.L1MissRate <= 0 || base.L1MissRate >= 1 {
		t.Errorf("L1 miss rate %g out of (0,1)", base.L1MissRate)
	}

	// A faster LLC (77 K eDRAM) speeds the core up on a memory-bound
	// benchmark; a slow pessimistic PCM slows it down.
	fast, err := exp(t).SystemImpact(EDRAMAt(tech.TempCryo77), prof("mcf"), mem)
	if err != nil {
		t.Fatal(err)
	}
	if fast.RelIPC <= 1 {
		t.Errorf("77K eDRAM RelIPC on mcf = %.4f, want > 1", fast.RelIPC)
	}
	slow, err := exp(t).SystemImpact(stacked(t, cell.PCM, cell.Pessimistic, 1), prof("mcf"), mem)
	if err != nil {
		t.Fatal(err)
	}
	if slow.RelIPC >= 1 {
		t.Errorf("pessimistic PCM RelIPC on mcf = %.4f, want < 1", slow.RelIPC)
	}

	// A compute-bound benchmark barely notices the LLC choice.
	quiet, err := exp(t).SystemImpact(stacked(t, cell.PCM, cell.Pessimistic, 1), prof("povray"), mem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(quiet.RelIPC-1) > 0.05 {
		t.Errorf("povray RelIPC = %.4f, want ~1 (LLC-insensitive)", quiet.RelIPC)
	}
}

func TestSystemImpactColdDRAMCompounds(t *testing.T) {
	// Cooling the DRAM too (the full CryoRAM system) shortens the miss
	// penalty and lifts IPC further for a memory-bound benchmark.
	warmMem, err := dram.New(dram.DDR4(), 300)
	if err != nil {
		t.Fatal(err)
	}
	coldMem, err := dram.New(dram.DDR4(), 77)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := exp(t).SystemImpact(EDRAMAt(tech.TempCryo77), p, warmMem)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := exp(t).SystemImpact(EDRAMAt(tech.TempCryo77), p, coldMem)
	if err != nil {
		t.Fatal(err)
	}
	if cold.AMATSeconds >= warm.AMATSeconds {
		t.Error("cold DRAM should shorten AMAT")
	}
}

func TestLifetimeScalesWithCapacity(t *testing.T) {
	// A bigger LLC spreads the same write stream over more blocks, so
	// wear-leveled lifetime grows proportionally.
	p := stacked(t, cell.PCM, cell.Optimistic, 1)
	small := p.WithCapacity(4 << 20)
	big := p.WithCapacity(32 << 20)
	tr := traffic(t, "omnetpp")
	evS, err := exp(t).Evaluate(small, tr)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := exp(t).Evaluate(big, tr)
	if err != nil {
		t.Fatal(err)
	}
	ratio := evB.LifetimeYears / evS.LifetimeYears
	if ratio < 7.9 || ratio > 8.1 {
		t.Errorf("8x capacity should give 8x lifetime, got %.2fx", ratio)
	}
}
