package explorer

import (
	"sync"

	"coldtall/internal/dram"
	"coldtall/internal/sim"
	"coldtall/internal/workload"
)

// The cross-computing-stack layer: the paper's methodology extrapolates
// "whether an NVM-based solution will meet the total bandwidth and expected
// access latencies without incurring slowdown". SystemImpact makes that
// check quantitative end to end — synthetic workload through the Table I
// hierarchy for miss rates, the array model for LLC latency, the DRAM model
// for miss penalties, folded into average memory access time and a CPI/IPC
// estimate.

// Core timing assumptions for the AMAT/CPI model (Table I's 5 GHz core).
const (
	l1HitCycles = 4.0
	l2HitCycles = 12.0
	// dramRowHitRate is the assumed row-buffer locality of LLC misses.
	dramRowHitRate = 0.5
)

// Impact is the system-level consequence of one LLC choice under one
// benchmark.
type Impact struct {
	// Point and Benchmark identify the cell.
	Point     DesignPoint
	Benchmark string
	// Miss rates observed in the hierarchy simulation (local ratios).
	L1MissRate, L2MissRate, LLCMissRate float64
	// AMATSeconds is the average memory access time.
	AMATSeconds float64
	// CPI is the estimated cycles per instruction.
	CPI float64
	// RelIPC is performance relative to the 350 K SRAM baseline LLC for
	// the same benchmark (> 1 means this LLC makes the CPU faster).
	RelIPC float64
}

// missProfile caches hierarchy simulations per benchmark (miss rates do not
// depend on the LLC technology, only on its geometry, which the study holds
// at Table I).
type missProfile struct {
	l1, l2, llc float64
}

var (
	missMu    sync.Mutex
	missCache = map[string]missProfile{}
)

// simulateMisses replays the benchmark stand-in and extracts local miss
// ratios per level.
func simulateMisses(prof workload.Profile) (missProfile, error) {
	missMu.Lock()
	mp, ok := missCache[prof.Name]
	missMu.Unlock()
	if ok {
		return mp, nil
	}
	g, err := prof.Generator(1)
	if err != nil {
		return missProfile{}, err
	}
	h, err := sim.NewHierarchy(sim.TableIConfig())
	if err != nil {
		return missProfile{}, err
	}
	const accesses = 400000
	h.Run(g, accesses/4) // warm
	before := [3]sim.Stats{h.LevelStats(0), h.LevelStats(1), h.LevelStats(2)}
	h.Run(g, accesses-accesses/4)
	rate := func(i int) float64 {
		s := h.LevelStats(i)
		acc := s.Accesses() - before[i].Accesses()
		if acc == 0 {
			return 0
		}
		return float64(s.Misses()-before[i].Misses()) / float64(acc)
	}
	mp = missProfile{l1: rate(0), l2: rate(1), llc: rate(2)}
	missMu.Lock()
	missCache[prof.Name] = mp
	missMu.Unlock()
	return mp, nil
}

// SystemImpact estimates the CPU-level effect of an LLC design point under
// a benchmark: AMAT through the simulated hierarchy, CPI via the
// benchmark's memory intensity, and IPC relative to the 350 K SRAM
// baseline.
func (e *Explorer) SystemImpact(p DesignPoint, prof workload.Profile, mem dram.Model) (Impact, error) {
	if err := prof.Validate(); err != nil {
		return Impact{}, err
	}
	mp, err := simulateMisses(prof)
	if err != nil {
		return Impact{}, err
	}
	amat, err := e.amat(p, mp, mem)
	if err != nil {
		return Impact{}, err
	}
	// The IPC comparison holds the clock fixed at the point's own
	// frequency on both sides: RelIPC isolates what the LLC choice does to
	// the CPU. A frequency *sweep* layers the clock ratio back on top
	// (performance ∝ f × IPC) against the 5 GHz baseline.
	bp := Baseline()
	bp.FrequencyHz = p.FrequencyHz
	base, err := e.amat(bp, mp, mem)
	if err != nil {
		return Impact{}, err
	}

	cycle := 1.0 / p.Frequency()
	memPerInstr := prof.MemOpsPerKiloInstr / 1000
	// Split the benchmark's nominal CPI into an execution core and the
	// baseline memory component, then swap the memory component.
	cpiNominal := 1.0 / prof.IPC
	memCPIBase := memPerInstr * (base - l1HitCycles*cycle) / cycle
	cpiCore := cpiNominal - memCPIBase
	if cpiCore < 0.1 {
		cpiCore = 0.1
	}
	memCPI := memPerInstr * (amat - l1HitCycles*cycle) / cycle
	cpi := cpiCore + memCPI
	cpiBase := cpiCore + memCPIBase
	return Impact{
		Point:       p,
		Benchmark:   prof.Name,
		L1MissRate:  mp.l1,
		L2MissRate:  mp.l2,
		LLCMissRate: mp.llc,
		AMATSeconds: amat,
		CPI:         cpi,
		RelIPC:      cpiBase / cpi,
	}, nil
}

// amat folds the hierarchy levels into the average memory access time for
// the given LLC design point.
func (e *Explorer) amat(p DesignPoint, mp missProfile, mem dram.Model) (float64, error) {
	r, err := e.Characterize(p)
	if err != nil {
		return 0, err
	}
	cycle := 1.0 / p.Frequency()
	tL1 := l1HitCycles * cycle
	tL2 := l2HitCycles * cycle
	tLLC := r.ReadLatency
	tMem := mem.AverageLatency(dramRowHitRate)
	return tL1 + mp.l1*(tL2+mp.l2*(tLLC+mp.llc*tMem)), nil
}
