package explorer

import (
	"context"
	"errors"
	"testing"
	"time"

	"coldtall/internal/workload"
)

func TestEvaluateAllContextPreCancelled(t *testing.T) {
	e := New()
	e.Workers = 4
	points := []DesignPoint{Baseline(), SRAMAt(77)}
	traffics := workload.StaticTraffic()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EvaluateAllContext(ctx, points, traffics); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateAllContext err = %v, want context.Canceled", err)
	}
	if got := e.OptimizeCalls(); got != 0 {
		t.Errorf("%d optimizations ran under a pre-cancelled context", got)
	}
}

func TestCharacterizeContextCancelledIsNotCached(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CharacterizeContext(ctx, Baseline()); !errors.Is(err, context.Canceled) {
		t.Fatalf("CharacterizeContext err = %v, want context.Canceled", err)
	}
	// A later caller with a live context must get a clean result: the
	// cancellation above must not have poisoned the cache.
	r, err := e.CharacterizeContext(context.Background(), Baseline())
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if r.ReadLatency <= 0 {
		t.Error("retry returned a zero characterization")
	}
	if got := e.OptimizeCalls(); got != 1 {
		t.Errorf("optimize calls = %d, want exactly 1 (cancelled attempt ran nothing)", got)
	}
}

// TestEvaluateAllContextCancelMidSweep cancels while the grid is in flight
// and checks the sweep aborts early instead of evaluating every cell.
func TestEvaluateAllContextCancelMidSweep(t *testing.T) {
	e := New()
	e.Workers = 2
	points, err := TableIICandidates()
	if err != nil {
		t.Fatal(err)
	}
	traffics := workload.StaticTraffic()
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the first characterization lands: the remaining
	// (many) points must never be optimized.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e.OptimizeCalls() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, sweepErr := e.EvaluateAllContext(ctx, points, traffics)
	<-done
	if sweepErr == nil {
		t.Skip("sweep completed before cancellation landed")
	}
	if !errors.Is(sweepErr, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", sweepErr)
	}
	if got := e.OptimizeCalls(); got >= int64(len(points)) {
		// The pruned organization search solves points in ~1 ms, so the
		// whole grid can drain between the watcher observing the first
		// optimization and its cancel landing — nothing was cut short,
		// so there is nothing to assert (same race as the skip above).
		t.Skip("cancellation landed after the sweep finished its optimizations")
	}
}
