package explorer

// FuzzParsePoint pins the spec round-trip contract the HTTP cache keys
// rely on: for any spec ParsePoint accepts,
//
//  1. its Canonical form parses to an identical point (canonicalization
//     never changes meaning),
//  2. Canonical is idempotent, and
//  3. DesignPoint.Spec is a fixed point of parsing — parsing the recovered
//     spec yields the same point, and recovering again yields the same
//     spec.
//
// Invalid specs must be rejected by ParsePoint with an error, never a
// panic. Seeds cover the points the study's golden artifacts cache-key:
// the cryogenic volatiles and the eNVM tentpole corners across the
// stacking sweep.

import (
	"testing"
)

func FuzzParsePoint(f *testing.F) {
	// Golden cache-key seeds: (cell, corner, style, dies, temperature_k,
	// capacity_bytes, frequency_hz).
	seeds := []struct {
		cell, corner, style string
		dies                int
		tempK               float64
		capacity            int64
		freqHz              float64
	}{
		{"SRAM", "", "", 0, 0, 0, 0},                       // the baseline, all defaults
		{"SRAM", "optimistic", "tsv", 1, 77, 0, 0},         // Fig. 1 cryogenic endpoint
		{"3T-eDRAM", "", "tsv", 1, 77, 0, 0},               // Fig. 3/4 cold volatile
		{"1T1C-eDRAM", "", "", 1, 350, 0, 0},               // builtin with ignored corner
		{"PCM", "optimistic", "tsv", 8, 350, 0, 0},         // Fig. 6/7 tentpole
		{"PCM", "pessimistic", "tsv", 4, 350, 0, 0},        //
		{"STT-RAM", "optimistic", "tsv", 2, 350, 0, 0},     //
		{"STT-RAM", "pessimistic", "tsv", 1, 350, 0, 0},    //
		{"RRAM", "optimistic", "monolithic", 4, 350, 0, 0}, //
		{"RRAM", "pessimistic", "face-to-face", 2, 350, 0, 0},
		{"SOT-RAM", "optimistic", "tsv", 1, 350, 32 << 20, 0}, // capacity override
		{"OS-GC", "optimistic", "monolithic", 4, 77, 0, 0},    // gain-cell sweep point
		{"OS-GC", "pessimistic", "monolithic", 2, 4, 0, 0},    // deep-cryo gain cell
		{"SRAM", "", "tsv", 1, 4, 0, 0},                       // 4 K characterization
		{"SRAM", "", "tsv", 1, 350, 0, 2.5e9},                 // frequency override
		{"3T-eDRAM", "", "tsv", 1, 77, 0, 1e10},               // cryo-boosted clock
		{"SRAM", "", "tsv", 1, 350, 0, 5e9},                   // explicit default clock
		{"FeRAM", "typical", "bga", 3, -40, -1, -5},           // invalid on every axis
	}
	for _, s := range seeds {
		f.Add(s.cell, s.corner, s.style, s.dies, s.tempK, s.capacity, s.freqHz)
	}
	f.Fuzz(func(t *testing.T, cellName, corner, style string, dies int, tempK float64, capacity int64, freqHz float64) {
		spec := PointSpec{
			Cell: cellName, Corner: corner, Style: style,
			Dies: dies, TemperatureK: tempK, CapacityBytes: capacity,
			FrequencyHz: freqHz,
		}
		p, err := ParsePoint(spec)
		if err != nil {
			return // rejected specs only need to not panic
		}
		if p.Label == "" || p.Key() == "" {
			t.Fatalf("accepted point has empty identity: %+v", p)
		}

		canon := spec.Canonical()
		if again := canon.Canonical(); again != canon {
			t.Errorf("Canonical not idempotent: %+v -> %+v", canon, again)
		}
		p2, err := ParsePoint(canon)
		if err != nil {
			t.Fatalf("canonical form of an accepted spec rejected: %+v: %v", canon, err)
		}
		if p2.Key() != p.Key() || p2.Label != p.Label {
			t.Errorf("canonicalization changed the point:\nspec:  %+v -> %s (%s)\ncanon: %+v -> %s (%s)",
				spec, p.Key(), p.Label, canon, p2.Key(), p2.Label)
		}

		recovered := p.Spec()
		p3, err := ParsePoint(recovered)
		if err != nil {
			t.Fatalf("recovered spec of an accepted point rejected: %+v: %v", recovered, err)
		}
		if p3.Key() != p.Key() || p3.Label != p.Label {
			t.Errorf("Spec round trip changed the point: %+v -> %+v -> %s, want %s",
				spec, recovered, p3.Key(), p.Key())
		}
		if fixed := p3.Spec(); fixed != recovered {
			t.Errorf("Spec is not a parse fixed point: %+v -> %+v", recovered, fixed)
		}
	})
}
