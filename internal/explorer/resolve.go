package explorer

import (
	"fmt"
	"strings"

	"coldtall/internal/cell"
	"coldtall/internal/stack"
	"coldtall/internal/workload"
)

// PointSpec is the wire-level description of a design point the CLI flags
// and the HTTP API share: technology and corner by name, stacking degree,
// operating temperature, and optional style/capacity overrides. Parsing a
// spec applies the same defaults everywhere, so the spec doubles as the
// canonical form requests are cache-keyed on.
type PointSpec struct {
	// Cell names the technology (SRAM, 3T-eDRAM, PCM, STT-RAM, RRAM, ...).
	Cell string `json:"cell"`
	// Corner selects the tentpole corner for eNVMs ("optimistic" when
	// empty); builtin cells ignore it.
	Corner string `json:"corner,omitempty"`
	// Dies is the stacking degree (1 when zero).
	Dies int `json:"dies,omitempty"`
	// TemperatureK is the operating temperature (350 when zero).
	TemperatureK float64 `json:"temperature_k,omitempty"`
	// Style names the 3D integration method ("TSV" when empty).
	Style string `json:"style,omitempty"`
	// CapacityBytes overrides the paper's 16 MiB LLC when positive.
	CapacityBytes int64 `json:"capacity_bytes,omitempty"`
	// FrequencyHz is the core clock (the Table I 5 GHz when zero).
	FrequencyHz float64 `json:"frequency_hz,omitempty"`
}

// withDefaults returns the spec with zero values replaced by the study's
// defaults, so equal effective points canonicalize to equal specs.
func (ps PointSpec) withDefaults() PointSpec {
	if ps.Corner == "" {
		ps.Corner = cell.Optimistic.String()
	}
	if ps.Dies == 0 {
		ps.Dies = 1
	}
	if ps.TemperatureK == 0 {
		ps.TemperatureK = 350
	}
	if ps.Style == "" {
		ps.Style = stack.TSVStack.String()
	}
	if ps.FrequencyHz == 0 {
		ps.FrequencyHz = workload.DefaultFrequencyHz
	}
	return ps
}

// Canonical returns the spec with the defaults filled in: equal effective
// points have equal canonical specs. This is the form cache keys are
// derived from, and it is a fixed point of parsing — for any spec that
// ParsePoint accepts, ParsePoint(spec).Spec() == spec.Canonical(), and
// canonicalizing a canonical spec changes nothing (FuzzParsePoint pins
// both properties).
func (ps PointSpec) Canonical() PointSpec { return ps.withDefaults() }

// ParsePoint resolves a spec into a validated design point. The label
// matches the CLI sweep convention ("8-die PCM @350K").
func ParsePoint(spec PointSpec) (DesignPoint, error) {
	spec = spec.withDefaults()
	tech, err := cell.ParseTechnology(spec.Cell)
	if err != nil {
		return DesignPoint{}, err
	}
	var c cell.Cell
	switch tech {
	case cell.SRAM, cell.EDRAM3T, cell.EDRAM1T1C:
		c, err = cell.Builtin(tech)
	default:
		var corner cell.Corner
		corner, err = parseCorner(spec.Corner)
		if err == nil {
			c, err = cell.Tentpole(tech, corner)
		}
	}
	if err != nil {
		return DesignPoint{}, err
	}
	style, err := stack.ParseStyle(spec.Style)
	if err != nil {
		return DesignPoint{}, err
	}
	label := fmt.Sprintf("%d-die %s @%.0fK", spec.Dies, c.Name, spec.TemperatureK)
	if spec.FrequencyHz != workload.DefaultFrequencyHz {
		label += fmt.Sprintf(" @%.2gGHz", spec.FrequencyHz/1e9)
	}
	p := DesignPoint{
		Label:         label,
		Cell:          c,
		Temperature:   spec.TemperatureK,
		Dies:          spec.Dies,
		Style:         style,
		CapacityBytes: spec.CapacityBytes,
		FrequencyHz:   spec.FrequencyHz,
	}
	if err := p.Validate(); err != nil {
		return DesignPoint{}, err
	}
	return p, nil
}

// Spec is the inverse of ParsePoint: the canonical wire form that resolves
// back to an identical point. The tentpole corner is recovered from the
// composite cell's name ("pcm-pessimistic" — see cell.Tentpole); builtin
// cells report the default corner, which parsing ignores for them.
func (p DesignPoint) Spec() PointSpec {
	corner := cell.Optimistic
	if strings.HasSuffix(p.Cell.Name, "-"+cell.Pessimistic.String()) {
		corner = cell.Pessimistic
	}
	return PointSpec{
		Cell:          p.Cell.Tech.String(),
		Corner:        corner.String(),
		Dies:          p.Dies,
		TemperatureK:  p.Temperature,
		Style:         p.Style.String(),
		CapacityBytes: p.CapacityBytes,
		FrequencyHz:   p.Frequency(),
	}
}

// parseCorner maps a corner name to a tentpole corner.
func parseCorner(s string) (cell.Corner, error) {
	for _, c := range cell.Corners() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("explorer: unknown corner %q (want optimistic or pessimistic)", s)
}
