// Package explorer is the cross-stack design-space-exploration engine — the
// rebuilt NVMExplorer core of the paper. It combines array-level
// characterization (internal/array, standing in for NVSim/Destiny/CryoMEM)
// with per-benchmark LLC traffic (internal/workload, standing in for
// Sniper) and the cryogenic cooling model (internal/cryo) to produce the
// application-level metrics the paper plots: total LLC power (with and
// without cooling), total LLC latency, and area, all relative to 350 K
// SRAM, plus endurance-aware lifetime and slowdown checks.
package explorer

import (
	"fmt"

	"coldtall/internal/array"
	"coldtall/internal/cell"
	"coldtall/internal/stack"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// Core-clock bounds for the frequency axis. The paper's system runs at a
// fixed 5 GHz (Table I); the sweep axis admits anything from a deeply
// throttled 100 MHz part to an aggressive 20 GHz cryo-boosted clock.
const (
	MinFrequencyHz = 1e8
	MaxFrequencyHz = 2e10
)

// DesignPoint is one LLC technology choice: a cell, an operating
// temperature and a stacking degree.
type DesignPoint struct {
	// Label is a short display name ("77K 3T-eDRAM", "8-die PCM (opt)").
	Label string
	// Cell is the bit-cell design point.
	Cell cell.Cell
	// Temperature is the operating temperature in kelvin.
	Temperature float64
	// Dies is the stacking degree (1 = 2D).
	Dies int
	// Style is the 3D integration method.
	Style stack.Style
	// CapacityBytes overrides the LLC capacity; 0 keeps the paper's
	// 16 MiB (Table I).
	CapacityBytes int64
	// Node overrides the process technology; the zero value keeps the
	// paper's 22 nm HP node.
	Node tech.Node
	// FrequencyHz overrides the core clock; 0 keeps the paper's 5 GHz
	// (Table I). The clock scales both the cycle time the AMAT model
	// converts latencies with and the LLC traffic the workloads generate.
	FrequencyHz float64
}

// Frequency returns the point's core clock in hertz (the Table I 5 GHz
// default unless overridden).
func (p DesignPoint) Frequency() float64 {
	if p.FrequencyHz > 0 {
		return p.FrequencyHz
	}
	return workload.DefaultFrequencyHz
}

// Validate reports configuration errors.
func (p DesignPoint) Validate() error {
	if p.Label == "" {
		return fmt.Errorf("explorer: design point needs a label")
	}
	if err := p.Cell.Validate(); err != nil {
		return err
	}
	if err := tech.ValidateTemperature(p.Temperature); err != nil {
		return err
	}
	if p.FrequencyHz != 0 && (p.FrequencyHz < MinFrequencyHz || p.FrequencyHz > MaxFrequencyHz) {
		return fmt.Errorf("explorer: frequency %.3g Hz outside supported range [%.0e, %.0e]",
			p.FrequencyHz, MinFrequencyHz, MaxFrequencyHz)
	}
	return (stack.Config{Dies: p.Dies, Style: p.Style}).Validate()
}

// ArrayConfig lowers the point into an array configuration using the
// paper's Table I LLC parameters (with an optional capacity override). It
// is what Characterize optimizes; callers wanting the full Pareto front
// rather than the single optimum pass it to array.ParetoContext.
func (p DesignPoint) ArrayConfig() array.Config { return p.arrayConfig() }

// arrayConfig lowers the point into an array configuration using the
// paper's Table I LLC parameters (with an optional capacity override).
func (p DesignPoint) arrayConfig() array.Config {
	cfg := array.DefaultLLC(p.Cell, p.Temperature, stack.Config{Dies: p.Dies, Style: p.Style})
	if p.CapacityBytes > 0 {
		cfg.CapacityBytes = p.CapacityBytes
	}
	if p.Node.Name != "" {
		cfg.Node = p.Node
	}
	return cfg
}

// Key returns a stable identity for caching. Points at the default 5 GHz
// clock keep the historical key shape (no frequency segment), so every
// cache entry persisted before the frequency axis existed stays valid.
func (p DesignPoint) Key() string {
	k := fmt.Sprintf("%s|%s|%.0f|%d|%v|%d|%s", p.Cell.Name, p.Cell.Tech, p.Temperature, p.Dies, p.Style, p.CapacityBytes, p.Node.Name)
	if f := p.Frequency(); f != workload.DefaultFrequencyHz {
		k += fmt.Sprintf("|f%.4g", f)
	}
	return k
}

// Capacity returns the point's LLC capacity in bytes (the Table I 16 MiB
// default unless overridden).
func (p DesignPoint) Capacity() int64 {
	if p.CapacityBytes > 0 {
		return p.CapacityBytes
	}
	return 16 << 20
}

// WithNode returns a copy of the point on a different process node.
func (p DesignPoint) WithNode(n tech.Node) DesignPoint {
	out := p
	out.Node = n
	out.Label = fmt.Sprintf("%s [%s]", p.Label, n.Name)
	return out
}

// WithCapacity returns a copy of the point at a different LLC capacity.
func (p DesignPoint) WithCapacity(bytes int64) DesignPoint {
	out := p
	out.CapacityBytes = bytes
	out.Label = fmt.Sprintf("%s %dMiB", p.Label, bytes>>20)
	return out
}

// WithFrequency returns a copy of the point at a different core clock.
func (p DesignPoint) WithFrequency(hz float64) DesignPoint {
	out := p
	out.FrequencyHz = hz
	out.Label = fmt.Sprintf("%s @%.2gGHz", p.Label, hz/1e9)
	return out
}

// String returns the label.
func (p DesignPoint) String() string { return p.Label }

// Point constructors for the standard studies.

// SRAMAt returns planar SRAM at the given temperature.
func SRAMAt(temperature float64) DesignPoint {
	return DesignPoint{
		Label:       fmt.Sprintf("%.0fK SRAM", temperature),
		Cell:        cell.NewSRAM6T(),
		Temperature: temperature,
		Dies:        1,
		Style:       stack.TSVStack,
	}
}

// EDRAMAt returns planar 3T-eDRAM at the given temperature.
func EDRAMAt(temperature float64) DesignPoint {
	return DesignPoint{
		Label:       fmt.Sprintf("%.0fK 3T-eDRAM", temperature),
		Cell:        cell.NewEDRAM3T(),
		Temperature: temperature,
		Dies:        1,
		Style:       stack.TSVStack,
	}
}

// GainCellAt returns a monolithically-stacked oxide-semiconductor
// gain-cell LLC at the given tentpole corner, temperature and die count.
// Monolithic integration is the gain cell's home turf: the BEOL-compatible
// IGZO transistors are fabricated directly in the upper metal layers, so
// the stacking style defaults to Monolithic rather than TSV.
func GainCellAt(corner cell.Corner, temperature float64, dies int) (DesignPoint, error) {
	c, err := cell.Tentpole(cell.OSGC, corner)
	if err != nil {
		return DesignPoint{}, err
	}
	return DesignPoint{
		Label:       fmt.Sprintf("%d-die OS-GC (%s) @%.0fK", dies, corner, temperature),
		Cell:        c,
		Temperature: temperature,
		Dies:        dies,
		Style:       stack.Monolithic,
	}, nil
}

// Baseline returns the universal normalization point: 1-die SRAM at 350 K.
func Baseline() DesignPoint { return SRAMAt(tech.TempHot350) }

// Stacked returns a 350 K design point for an eNVM tentpole corner (or
// SRAM, which ignores the corner) at the given die count.
func Stacked(t cell.Technology, corner cell.Corner, dies int) (DesignPoint, error) {
	var c cell.Cell
	var err error
	if t == cell.SRAM {
		c = cell.NewSRAM6T()
	} else if t == cell.EDRAM3T {
		c = cell.NewEDRAM3T()
	} else {
		c, err = cell.Tentpole(t, corner)
		if err != nil {
			return DesignPoint{}, err
		}
	}
	label := fmt.Sprintf("%d-die %s", dies, t)
	if t != cell.SRAM && t != cell.EDRAM3T {
		label = fmt.Sprintf("%d-die %s (%s)", dies, t, corner)
	}
	return DesignPoint{
		Label:       label,
		Cell:        c,
		Temperature: tech.TempHot350,
		Dies:        dies,
		Style:       stack.TSVStack,
	}, nil
}

// CryoSweep returns SRAM and 3T-eDRAM across the paper's temperature range
// (Figs. 1 and 3).
func CryoSweep(temperatures []float64) []DesignPoint {
	var out []DesignPoint
	for _, t := range temperatures {
		out = append(out, SRAMAt(t), EDRAMAt(t))
	}
	return out
}

// ENVMSweep returns the Fig. 6/7 design points: SRAM plus optimistic and
// pessimistic PCM, STT-RAM and RRAM at 1, 2, 4 and 8 dies, all at 350 K.
func ENVMSweep() ([]DesignPoint, error) {
	var out []DesignPoint
	for _, dies := range []int{1, 2, 4, 8} {
		p, err := Stacked(cell.SRAM, cell.Optimistic, dies)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		for _, t := range []cell.Technology{cell.PCM, cell.STTRAM, cell.RRAM} {
			for _, c := range cell.Corners() {
				p, err := Stacked(t, c, dies)
				if err != nil {
					return nil, err
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// TableIICandidates returns the design points Table II selects among: the
// 77 K cryogenic options plus the full 350 K eNVM/SRAM stacking sweep
// (optimistic corners, as the paper's table reports technology winners).
func TableIICandidates() ([]DesignPoint, error) {
	pts := []DesignPoint{SRAMAt(tech.TempCryo77), EDRAMAt(tech.TempCryo77), Baseline()}
	for _, dies := range []int{1, 2, 4, 8} {
		for _, t := range []cell.Technology{cell.SRAM, cell.PCM, cell.STTRAM, cell.RRAM} {
			if t == cell.SRAM && dies == 1 {
				continue // already present as the baseline
			}
			p, err := Stacked(t, cell.Optimistic, dies)
			if err != nil {
				return nil, err
			}
			pts = append(pts, p)
		}
	}
	return pts, nil
}
