package explorer

// Concurrency tests for the sweep engine: these are written to be run under
// the race detector (make check runs go test -race ./...), and they force
// multi-worker pools explicitly so the concurrent paths execute even when
// GOMAXPROCS is 1.

import (
	"reflect"
	"sync"
	"testing"

	"coldtall/internal/array"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// TestCharacterizeSingleflight pins the duplicate-compute fix: N concurrent
// callers of the same design point must share exactly one array.Optimize
// invocation. Before the singleflight guard, every caller that missed the
// cache raced into its own optimization.
func TestCharacterizeSingleflight(t *testing.T) {
	e := New()
	p := Baseline()
	const n = 16

	start := make(chan struct{})
	results := make([]array.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start // line every caller up on the same cold cache
			results[i], errs[i] = e.Characterize(p)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d got a different characterization", i)
		}
	}
	if got := e.OptimizeCalls(); got != 1 {
		t.Errorf("array.Optimize ran %d times for %d concurrent callers of one point, want 1", got, n)
	}

	// A later caller hits the cache without a new optimization.
	if _, err := e.Characterize(p); err != nil {
		t.Fatal(err)
	}
	if got := e.OptimizeCalls(); got != 1 {
		t.Errorf("cache hit re-ran Optimize (%d calls)", got)
	}
}

// TestCharacterizeDistinctPointsConcurrently checks that the singleflight
// guard does not serialize unrelated points: each key optimizes once, and
// no goroutine blocks another key's computation (the race detector guards
// the cache accesses).
func TestCharacterizeDistinctPointsConcurrently(t *testing.T) {
	e := New()
	points := []DesignPoint{
		Baseline(),
		SRAMAt(tech.TempCryo77),
		EDRAMAt(tech.TempHot350),
		EDRAMAt(tech.TempCryo77),
	}
	const callersPerPoint = 4

	var wg sync.WaitGroup
	start := make(chan struct{})
	for range [callersPerPoint]struct{}{} {
		for _, p := range points {
			wg.Add(1)
			go func(p DesignPoint) {
				defer wg.Done()
				<-start
				if _, err := e.Characterize(p); err != nil {
					t.Error(err)
				}
			}(p)
		}
	}
	close(start)
	wg.Wait()

	if got := e.OptimizeCalls(); got != int64(len(points)) {
		t.Errorf("Optimize ran %d times for %d distinct points, want one each", got, len(points))
	}
}

// TestEvaluateAllParallelMatchesSerial is the engine's determinism
// contract at the grid level: the same grid evaluated serially and on a
// forced 8-worker pool must be deeply equal, cell for cell.
func TestEvaluateAllParallelMatchesSerial(t *testing.T) {
	points := []DesignPoint{Baseline(), SRAMAt(tech.TempCryo77), EDRAMAt(tech.TempCryo77)}
	traffics := workload.StaticTraffic()[:5]

	serial := New()
	serial.Workers = 1
	want, err := serial.EvaluateAll(points, traffics)
	if err != nil {
		t.Fatal(err)
	}

	par := New()
	par.Workers = 8
	got, err := par.EvaluateAll(points, traffics)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Error("parallel EvaluateAll diverged from the serial walk")
	}
}

// TestEvaluateConcurrentMixedPoints hammers Evaluate (which reaches the
// cache through both Characterize and the slowdown baseline) from many
// goroutines — a pure race-detector workout for the evaluation path.
func TestEvaluateConcurrentMixedPoints(t *testing.T) {
	e := New()
	e.Workers = 8
	points := []DesignPoint{Baseline(), EDRAMAt(tech.TempCryo77)}
	traffics := workload.StaticTraffic()[:4]

	var wg sync.WaitGroup
	for _, p := range points {
		for _, tr := range traffics {
			wg.Add(1)
			go func(p DesignPoint, tr workload.Traffic) {
				defer wg.Done()
				if _, err := e.Evaluate(p, tr); err != nil {
					t.Error(err)
				}
			}(p, tr)
		}
	}
	wg.Wait()

	// Three unique characterizations: the two points plus the slowdown
	// baseline shared by every cell (Baseline is one of the points here).
	if got := e.OptimizeCalls(); got != 2 {
		t.Errorf("Optimize ran %d times, want 2 (one per unique point)", got)
	}
}
