package explorer

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"coldtall/internal/array"
	"coldtall/internal/cryo"
	"coldtall/internal/parallel"
	"coldtall/internal/reliability"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// Evaluation is one (design point, benchmark) cell of the study: the
// application-level metrics the paper plots.
type Evaluation struct {
	// Point and Traffic identify the cell.
	Point   DesignPoint
	Traffic workload.Traffic
	// Array is the underlying array characterization.
	Array array.Result

	// DevicePower is leakage + refresh + traffic-driven dynamic power in
	// watts.
	DevicePower float64
	// CoolingPower is the cryocooler input power (0 when warm).
	CoolingPower float64
	// TotalPower is DevicePower + CoolingPower — the paper's "total LLC
	// power including cooling".
	TotalPower float64

	// AggregateLatency is the total access latency incurred per second
	// of execution (reads/s x read latency + writes/s x write latency),
	// the paper's "total LLC latency".
	AggregateLatency float64
	// Utilization is demanded accesses over sustainable bandwidth; at 1
	// the array saturates.
	Utilization float64
	// ContentionFactor inflates per-access latency for bank conflicts
	// under load (M/D/1 waiting time): 1 at idle, growing without bound
	// toward saturation. It quantifies the paper's bandwidth check.
	ContentionFactor float64
	// Slowdown reports whether this solution fails the paper's
	// bandwidth/latency check against the 350 K SRAM baseline for the
	// same benchmark (a relative total-latency value above 1, or demand
	// beyond the array's sustainable bandwidth).
	Slowdown bool

	// LifetimeYears is the write-endurance-limited lifetime under this
	// benchmark's write rate with ideal wear leveling (+Inf when the
	// technology does not wear).
	LifetimeYears float64
}

// ModelVersion stamps persisted characterization results with the physics
// they were computed under. Bump it whenever the array/cell/tech/stack
// models change observable numbers — a persistent result store
// (internal/store) keyed with the old stamp is then invalidated wholesale
// instead of serving stale physics.
const ModelVersion = "coldtall-physics-v1"

// ResultStore is the optional persistence hook behind the characterization
// cache: a disk-backed store (wired by the serving layer) that lets
// characterizations survive process restarts. Load reports whether the key
// exists; Save is best-effort (a failed write costs a future
// recomputation). Implementations must be safe for concurrent use.
type ResultStore interface {
	Load(key string) (array.Result, bool)
	Save(key string, r array.Result)
}

// charState is the characterization memory an Explorer computes through:
// the in-process result cache, the singleflight group guarding it, the
// optimize-invocation counter, and the optional persistence hook. It is a
// separate shared structure so explorers that differ only in their cooling
// environment (cooling touches Evaluate, never Characterize) can share one
// memory — see WithCoolingShared.
type charState struct {
	mu    sync.Mutex
	cache map[string]array.Result

	// flight deduplicates in-flight characterizations so the expensive
	// array.Optimize search runs at most once per design-point key even
	// under concurrent callers.
	flight parallel.Flight[array.Result]

	// optimizeCalls counts actual array.Optimize invocations (cache,
	// flight and persistence hits excluded) — observable via the
	// concurrency tests.
	optimizeCalls atomic.Int64

	// persist, when non-nil, is consulted on cache misses and written on
	// cache fills (under the flight, so each key is persisted once).
	persist ResultStore
}

// Explorer evaluates design points under workloads. The zero value is not
// usable; construct with New.
//
// An Explorer is safe for concurrent use: the characterization cache is
// singleflight-guarded, so concurrent callers of the same design point share
// one array optimization, and EvaluateAll fans the points×benchmarks grid
// out over a bounded worker pool with deterministic output ordering.
type Explorer struct {
	// Cooling is the cryogenic environment.
	Cooling cryo.Cooling

	// Workers bounds the sweep worker pool: 0 (the default) means one
	// worker per available CPU, 1 forces the serial path. Set it before
	// the first sweep; it is not synchronized.
	Workers int

	chars *charState
}

// New returns an Explorer with the paper's default cooling (100 kW-class
// cryocooler charged below 200 K).
func New() *Explorer {
	return &Explorer{
		Cooling: cryo.DefaultCooling(),
		chars:   &charState{cache: make(map[string]array.Result)},
	}
}

// WithCooling returns an Explorer using a specific cooling environment,
// with its own characterization memory (the historical constructor for
// fully independent explorers — derive from an existing one with
// WithCoolingShared when the caches should be shared).
func WithCooling(c cryo.Cooling) (*Explorer, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	e := New()
	e.Cooling = c
	return e, nil
}

// WithCoolingShared returns an Explorer under a different cooling
// environment that shares the receiver's characterization cache, flight
// and persistence hook. Array characterization never depends on cooling —
// cooling only folds into Evaluate's power accounting — so sub-studies
// that sweep cooler classes (the Sec. III-C sensitivity) reuse every
// characterization instead of re-running the optimizer per class.
func (e *Explorer) WithCoolingShared(c cryo.Cooling) (*Explorer, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Explorer{Cooling: c, Workers: e.Workers, chars: e.chars}, nil
}

// SetPersistence attaches a persistent result store behind the
// characterization cache: misses fall through to it, fills write through
// to it, and a restarted process re-serves every previously characterized
// point without re-running the optimizer. Set it before the explorer takes
// traffic; the field is not synchronized against in-flight sweeps.
func (e *Explorer) SetPersistence(rs ResultStore) {
	e.chars.mu.Lock()
	e.chars.persist = rs
	e.chars.mu.Unlock()
}

// Characterize runs (and caches) the EDP-optimized array characterization
// of a design point. Concurrent callers of the same point share a single
// in-flight optimization: the first caller computes, the rest wait on it,
// so a cold sweep never runs the expensive search twice for one key.
func (e *Explorer) Characterize(p DesignPoint) (array.Result, error) {
	return e.CharacterizeContext(context.Background(), p)
}

// CharacterizeContext is Characterize with cooperative cancellation: the
// underlying organization search aborts once ctx is done, and the failed
// characterization is not cached, so a later caller with a live context
// recomputes it cleanly.
//
// Cancellation caveat: concurrent callers of the same key share one flight,
// and the flight runs under the first caller's context. If that caller is
// cancelled mid-search, the waiting callers observe the same cancellation
// error; retrying (with their own live context) recomputes the point.
func (e *Explorer) CharacterizeContext(ctx context.Context, p DesignPoint) (array.Result, error) {
	if err := p.Validate(); err != nil {
		return array.Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return array.Result{}, fmt.Errorf("explorer: characterizing %s: %w", p.Label, err)
	}
	key := p.Key()
	cs := e.chars
	cs.mu.Lock()
	r, ok := cs.cache[key]
	persist := cs.persist
	cs.mu.Unlock()
	if ok {
		return r, nil
	}
	return cs.flight.Do(key, func() (array.Result, error) {
		// Re-check under the flight: a previous flight for this key may
		// have filled the cache between our miss and winning the flight.
		cs.mu.Lock()
		r, ok := cs.cache[key]
		cs.mu.Unlock()
		if ok {
			return r, nil
		}
		if persist != nil {
			if r, ok := persist.Load(key); ok {
				cs.mu.Lock()
				cs.cache[key] = r
				cs.mu.Unlock()
				return r, nil
			}
		}
		cs.optimizeCalls.Add(1)
		r, err := array.OptimizeContext(ctx, p.arrayConfig())
		if err != nil {
			return array.Result{}, fmt.Errorf("explorer: characterizing %s: %w", p.Label, err)
		}
		cs.mu.Lock()
		cs.cache[key] = r
		cs.mu.Unlock()
		if persist != nil {
			persist.Save(key, r)
		}
		return r, nil
	})
}

// OptimizeCalls reports how many times the explorer actually ran the
// expensive array optimization (cache and flight hits excluded). The
// serving layer's cache-stampede tests assert on it; it is also a useful
// production gauge for cache effectiveness.
func (e *Explorer) OptimizeCalls() int64 { return e.chars.optimizeCalls.Load() }

// CachedCharacterization reports whether the point's characterization is
// already available without running the optimizer: in the in-process cache
// or (when persistence is attached) in the persistent store. A persistence
// hit is promoted into the cache. It never computes.
func (e *Explorer) CachedCharacterization(p DesignPoint) (array.Result, bool) {
	key := p.Key()
	cs := e.chars
	cs.mu.Lock()
	r, ok := cs.cache[key]
	persist := cs.persist
	cs.mu.Unlock()
	if ok {
		return r, true
	}
	if persist != nil {
		if r, ok := persist.Load(key); ok {
			cs.mu.Lock()
			cs.cache[key] = r
			cs.mu.Unlock()
			return r, true
		}
	}
	return array.Result{}, false
}

// SeedCharacterization installs an externally computed characterization
// for a point, filling the in-process cache and writing through the
// persistence hook exactly as CharacterizeContext would have. The cluster
// layer uses it to land worker-computed results: array.Optimize is
// deterministic (the pruned/exhaustive differential pins this), so a
// seeded result is identical to what a local computation would produce and
// every artifact rendered from it stays byte-identical.
func (e *Explorer) SeedCharacterization(p DesignPoint, r array.Result) {
	key := p.Key()
	cs := e.chars
	cs.mu.Lock()
	_, had := cs.cache[key]
	if !had {
		cs.cache[key] = r
	}
	persist := cs.persist
	cs.mu.Unlock()
	if !had && persist != nil {
		persist.Save(key, r)
	}
}

// Evaluate computes the application-level metrics of one design point under
// one benchmark's traffic, following the paper's methodology: total LLC
// power is leakage plus refresh plus rate-weighted access energy, cooling
// is charged below the cooling threshold, and total LLC latency is the
// rate-weighted access latency.
func (e *Explorer) Evaluate(p DesignPoint, tr workload.Traffic) (Evaluation, error) {
	return e.EvaluateContext(context.Background(), p, tr)
}

// EvaluateContext is Evaluate with cooperative cancellation of the
// underlying characterization (see CharacterizeContext).
func (e *Explorer) EvaluateContext(ctx context.Context, p DesignPoint, tr workload.Traffic) (Evaluation, error) {
	if err := tr.Validate(); err != nil {
		return Evaluation{}, err
	}
	// The static traffic table is stated at the Table I 5 GHz clock; a
	// point with a frequency override generates proportionally scaled
	// demand. At the default clock this is exactly the identity, so every
	// historical evaluation is bit-for-bit unchanged.
	tr = tr.AtFrequency(p.Frequency())
	r, err := e.CharacterizeContext(ctx, p)
	if err != nil {
		return Evaluation{}, err
	}
	dynamic := tr.ReadsPerSec*r.ReadEnergy + tr.WritesPerSec*r.WriteEnergy
	device := r.LeakagePower + r.RefreshPower + dynamic
	total := e.Cooling.TotalPower(device, p.Temperature)

	agg := tr.ReadsPerSec*r.ReadLatency + tr.WritesPerSec*r.WriteLatency
	util, contention := contentionModel(tr, r)

	ev := Evaluation{
		Point:            p,
		Traffic:          tr,
		Array:            r,
		DevicePower:      device,
		CoolingPower:     total - device,
		TotalPower:       total,
		AggregateLatency: agg,
		Utilization:      util,
		ContentionFactor: contention,
		LifetimeYears:    lifetimeYears(r, p, tr),
	}
	ev.Slowdown = e.slowdown(ev)
	return ev, nil
}

// slowdown applies the paper's performance check: a solution "above a
// relative value of 1 in total LLC latency" against 350 K SRAM on the same
// benchmark, or demand exceeding sustainable bandwidth, will negatively
// impact performance.
func (e *Explorer) slowdown(ev Evaluation) bool {
	demand := ev.Traffic.ReadsPerSec + ev.Traffic.WritesPerSec
	if demand > ev.Array.BandwidthAccesses {
		return true
	}
	base, err := e.Characterize(Baseline())
	if err != nil {
		return false
	}
	baseAgg := ev.Traffic.ReadsPerSec*base.ReadLatency + ev.Traffic.WritesPerSec*base.WriteLatency
	return ev.AggregateLatency > baseAgg*(1+1e-12)
}

// contentionModel estimates bank-conflict queuing: the LLC's banks act as
// servers with deterministic service time (the random cycle), so the mean
// M/D/1 waiting time inflates effective latency by 1 + rho/(2(1-rho)). At
// or beyond saturation the factor is unbounded; it is capped at 100x for
// reporting.
func contentionModel(tr workload.Traffic, r array.Result) (utilization, factor float64) {
	demand := tr.ReadsPerSec + tr.WritesPerSec
	if r.BandwidthAccesses <= 0 {
		return math.Inf(1), 100
	}
	rho := demand / r.BandwidthAccesses
	if rho >= 1 {
		return rho, 100
	}
	return rho, 1 + rho/(2*(1-rho))
}

// lifetimeYears estimates the wear-out horizon with ideal wear leveling:
// endurance cycles per cell, writes spread across all blocks.
func lifetimeYears(r array.Result, p DesignPoint, tr workload.Traffic) float64 {
	if math.IsInf(p.Cell.EnduranceCycles, 1) {
		return math.Inf(1)
	}
	if tr.WritesPerSec == 0 {
		return math.Inf(1)
	}
	blocks := float64(p.Capacity()) / 64
	writesPerBlockPerSec := tr.WritesPerSec / blocks
	seconds := p.Cell.EnduranceCycles / writesPerBlockPerSec
	return seconds / (365.25 * 24 * 3600)
}

// EvaluateAll crosses design points with benchmarks; results are indexed
// [point][benchmark] following the input orders. The grid is evaluated on
// the explorer's worker pool (Workers knob); cells land at their input
// positions, so the output is identical to the serial walk cell for cell.
func (e *Explorer) EvaluateAll(points []DesignPoint, traffics []workload.Traffic) ([][]Evaluation, error) {
	return e.EvaluateAllContext(context.Background(), points, traffics)
}

// EvaluateAllContext is EvaluateAll with cooperative cancellation: once ctx
// is done, no further grid cells are dispatched, in-flight characterizations
// abort at their next candidate, and the sweep returns the cancellation
// error — so an abandoned HTTP request (or a Ctrl-C on the CLI) stops
// burning worker-pool CPU mid-sweep.
func (e *Explorer) EvaluateAllContext(ctx context.Context, points []DesignPoint, traffics []workload.Traffic) ([][]Evaluation, error) {
	out := make([][]Evaluation, len(points))
	for i := range out {
		out[i] = make([]Evaluation, len(traffics))
	}
	cols := len(traffics)
	order := sweepOrder(points, cols)
	err := parallel.ForEachContext(ctx, len(points)*cols, e.Workers, func(k int) error {
		cell := order[k]
		i, j := cell/cols, cell%cols
		ev, err := e.EvaluateContext(ctx, points[i], traffics[j])
		if err != nil {
			return err
		}
		out[i][j] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WarmFamiliesContext characterizes one representative per sweep family
// (the first member in input order) on the worker pool, so a subsequent
// parallel sweep over the same points finds every family's organization
// ranking already established and the array layer's pruned search
// re-verifies neighbors instead of cold-starting each one concurrently.
// Every representative is a member of the sweep itself, so the pass adds
// no design points — it only fills the characterization cache in an order
// that maximizes warm starts. Results are unaffected either way; this is
// purely a scheduling optimization.
func (e *Explorer) WarmFamiliesContext(ctx context.Context, points []DesignPoint) error {
	seen := make(map[string]bool, len(points))
	var reps []DesignPoint
	for _, p := range points {
		k := sweepFamilyKey(p)
		if !seen[k] {
			seen[k] = true
			reps = append(reps, p)
		}
	}
	return parallel.ForEachContext(ctx, len(reps), e.Workers, func(i int) error {
		_, err := e.CharacterizeContext(ctx, reps[i])
		return err
	})
}

// FamilyKey groups design points that differ only along the delta axes of
// the array search — temperature and die count. It deliberately mirrors
// the family key of the array package's ranking memo: solving one member
// seeds the organization ordering for the rest. The sweep scheduler walks
// families contiguously, and the cluster coordinator leases whole families
// to one worker so every replica's rankingMemo warm-starts stay effective.
func FamilyKey(p DesignPoint) string {
	return fmt.Sprintf("%s|%v|%d|%s|%v", p.Cell.Name, p.Cell.Tech, p.Capacity(), p.Node.Name, p.Style)
}

// sweepFamilyKey is the historical unexported spelling.
func sweepFamilyKey(p DesignPoint) string { return FamilyKey(p) }

// FamilyOrder returns a permutation of point indices that walks each
// characterization family contiguously, members ordered by (dies,
// temperature) so consecutive positions are neighboring design points. It
// is the schedule both the in-process sweep (sweepOrder) and the cluster
// coordinator's lease decomposition dispatch in: the array layer's pruned
// search then re-verifies a warm ranking instead of cold-starting per
// point. Only ORDER is defined here — callers still land results at input
// positions, so outputs stay byte-identical to the naive walk.
func FamilyOrder(points []DesignPoint) []int {
	type member struct{ point, seq int }
	families := make(map[string][]member)
	var keys []string
	for i, p := range points {
		k := FamilyKey(p)
		if _, seen := families[k]; !seen {
			keys = append(keys, k)
		}
		families[k] = append(families[k], member{point: i, seq: i})
	}
	order := make([]int, 0, len(points))
	for _, k := range keys {
		ms := families[k]
		sort.SliceStable(ms, func(a, b int) bool {
			pa, pb := points[ms[a].point], points[ms[b].point]
			if pa.Dies != pb.Dies {
				return pa.Dies < pb.Dies
			}
			if pa.Temperature != pb.Temperature {
				return pa.Temperature < pb.Temperature
			}
			return ms[a].seq < ms[b].seq
		})
		for _, m := range ms {
			order = append(order, m.point)
		}
	}
	return order
}

// sweepOrder expands FamilyOrder over the points×traffics grid: each
// point's cells dispatch contiguously in benchmark order within the
// family-contiguous point walk. Only dispatch ORDER changes: every cell
// still lands at its input position, so the output grid — and every golden
// artifact derived from it — is byte-identical to the naive walk.
func sweepOrder(points []DesignPoint, cols int) []int {
	po := FamilyOrder(points)
	order := make([]int, 0, len(points)*cols)
	for _, i := range po {
		for j := 0; j < cols; j++ {
			order = append(order, i*cols+j)
		}
	}
	return order
}

// ReferenceBenchmark is the normalization workload of the paper's SPEC
// analyses (Fig. 1's namd).
const ReferenceBenchmark = "namd"

// BaselineEvaluation returns the universal denominator: 350 K 1-die SRAM
// running the reference benchmark.
func (e *Explorer) BaselineEvaluation() (Evaluation, error) {
	tr, err := workload.StaticTrafficFor(ReferenceBenchmark)
	if err != nil {
		return Evaluation{}, err
	}
	return e.Evaluate(Baseline(), tr)
}

// Relative expresses an evaluation against a baseline evaluation, the way
// every figure in the paper is normalized.
type Relative struct {
	Evaluation
	// RelPower is TotalPower over the baseline's (cooling included).
	RelPower float64
	// RelDevicePower excludes cooling on both sides.
	RelDevicePower float64
	// RelLatency is AggregateLatency over the baseline's.
	RelLatency float64
	// RelArea is footprint over the baseline's.
	RelArea float64
}

// Normalize divides an evaluation by a baseline.
func Normalize(ev, base Evaluation) Relative {
	return Relative{
		Evaluation:     ev,
		RelPower:       ev.TotalPower / base.TotalPower,
		RelDevicePower: ev.DevicePower / base.DevicePower,
		RelLatency:     ev.AggregateLatency / base.AggregateLatency,
		RelArea:        ev.Array.FootprintM2 / base.Array.FootprintM2,
	}
}

// Reliability analyzes the evaluation's design point under its benchmark's
// write stream with the LLC's SECDED code: soft write-error FIT (after one
// write-verify retry, the standard eNVM controller policy), wear-out
// lifetime, and the retention weak-bit tail for dynamic cells. The refresh
// interval is fixed at the hot-corner (350 K) design value, so cryogenic
// operation shows its retention-tail benefit.
func (ev Evaluation) Reliability() (reliability.Report, error) {
	cfg := reliability.Config{
		ECC:           reliability.SECDED(),
		WritesPerSec:  ev.Traffic.WritesPerSec,
		BlockDataBits: 64 * 8,
		TotalBits:     float64(ev.Point.Capacity()) * 8,
		RetentionS:    ev.Array.Retention,
		WriteRetries:  1,
	}
	if ev.Point.Cell.NeedsRefresh() {
		corner, err := tech.Node22HP().At(tech.TempHot350)
		if err != nil {
			return reliability.Report{}, err
		}
		cfg.RefreshIntervalS = ev.Point.Cell.Retention(corner) / 10
	}
	return reliability.Analyze(ev.Point.Cell, cfg)
}
