package workload

import (
	"math"
	"sort"
	"testing"
)

func TestProfilesCoverFullSuite(t *testing.T) {
	ps := Profiles()
	if len(ps) != 23 {
		t.Fatalf("got %d profiles, want the 23 SPECrate 2017 benchmarks", len(ps))
	}
	ints, fps := 0, 0
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		switch p.Suite {
		case "intrate":
			ints++
		case "fprate":
			fps++
		default:
			t.Errorf("%s: unknown suite %q", p.Name, p.Suite)
		}
	}
	if ints != 10 || fps != 13 {
		t.Errorf("suite split %d int / %d fp, want 10/13", ints, fps)
	}
}

func TestStaticTrafficMatchesProfiles(t *testing.T) {
	// Every profile has a static entry and vice versa, and the static
	// read rate equals the profile-derived analytic rate within 25%
	// (rate = cores * IPC * f * memops * LLCFrac).
	for _, p := range Profiles() {
		st, err := StaticTrafficFor(p.Name)
		if err != nil {
			t.Errorf("no static traffic for %s", p.Name)
			continue
		}
		analytic := Cores * p.IPC * FrequencyHz * (p.MemOpsPerKiloInstr / 1000) * p.LLCFrac
		if ratio := st.ReadsPerSec / analytic; ratio < 0.75 || ratio > 1.35 {
			t.Errorf("%s: static %.3g vs analytic %.3g reads/s (ratio %.2f)",
				p.Name, st.ReadsPerSec, analytic, ratio)
		}
	}
	if len(StaticTraffic()) != len(Profiles()) {
		t.Error("static table and profiles out of sync")
	}
}

func TestTrafficLandscapeShape(t *testing.T) {
	byName := map[string]Traffic{}
	var maxReads Traffic
	for _, tr := range StaticTraffic() {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		byName[tr.Benchmark] = tr
		if tr.ReadsPerSec > maxReads.ReadsPerSec {
			maxReads = tr
		}
	}
	// povray is the paper's sub-5e4 example.
	if byName["povray"].ReadsPerSec >= LowBandMax {
		t.Error("povray must sit below 5e4 reads/s")
	}
	// mcf is the read-traffic maximum and has the lowest write:read
	// ratio (the Fig. 7 exception).
	if maxReads.Benchmark != "mcf" {
		t.Errorf("highest read traffic is %s, want mcf", maxReads.Benchmark)
	}
	if byName["mcf"].ReadsPerSec < HighBandMin {
		t.Error("mcf must sit in the high band")
	}
	for name, tr := range byName {
		if name == "mcf" {
			continue
		}
		if tr.WriteReadRatio() <= byName["mcf"].WriteReadRatio() {
			t.Errorf("%s write:read ratio %.3f should exceed mcf's %.3f",
				name, tr.WriteReadRatio(), byName["mcf"].WriteReadRatio())
		}
	}
	// The range spans the paper's 1e4..2e8 landscape.
	if byName["exchange2"].ReadsPerSec > 5e4 || maxReads.ReadsPerSec < 1e8 {
		t.Error("traffic range should span ~1e4 to ~2e8 reads/s")
	}
	// namd (Figs. 1 and 4) is a high-traffic benchmark per the paper
	// ("the huge LLC accesses of the workload").
	if BandOf(byName["namd"].ReadsPerSec) != BandHigh {
		t.Error("namd should classify into the high band")
	}
}

func TestBandsPartitionBenchmarks(t *testing.T) {
	total := 0
	for _, b := range Bands() {
		total += len(InBand(b))
	}
	if total != len(StaticTraffic()) {
		t.Errorf("bands cover %d benchmarks, want %d", total, len(StaticTraffic()))
	}
	if n := len(InBand(BandLow)); n < 2 {
		t.Errorf("low band has %d members, want >= 2 (povray, exchange2)", n)
	}
	if n := len(InBand(BandMid)); n < 5 {
		t.Errorf("mid band has %d members, want a populated middle", n)
	}
	if n := len(InBand(BandHigh)); n < 8 {
		t.Errorf("high band has %d members, want the majority of fp benchmarks", n)
	}
}

func TestBandOfBoundaries(t *testing.T) {
	cases := map[float64]Band{
		1e3: BandLow, 4.9e4: BandLow,
		5e4: BandMid, 1e6: BandMid, 8e6: BandMid,
		8.1e6: BandHigh, 2e8: BandHigh,
	}
	for rate, want := range cases {
		if got := BandOf(rate); got != want {
			t.Errorf("BandOf(%g) = %v, want %v", rate, got, want)
		}
	}
}

func TestRepresentativeIsBandMaximum(t *testing.T) {
	for _, b := range Bands() {
		rep, err := Representative(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range InBand(b) {
			if tr.ReadsPerSec > rep.ReadsPerSec {
				t.Errorf("band %v representative %s is not the maximum", b, rep.Benchmark)
			}
		}
	}
	if rep, _ := Representative(BandHigh); rep.Benchmark != "mcf" {
		t.Errorf("high-band representative = %s, want mcf", rep.Benchmark)
	}
}

func TestSortedByReadsAscending(t *testing.T) {
	ts := SortedByReads()
	for i := 1; i < len(ts); i++ {
		if ts[i].ReadsPerSec < ts[i-1].ReadsPerSec {
			t.Fatal("SortedByReads not ascending")
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Errorf("ProfileByName(mcf) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("doom"); err == nil {
		t.Error("unknown benchmark should error")
	}
	if len(Names()) != 23 {
		t.Error("Names() should list 23 benchmarks")
	}
}

func TestGeneratorConstruction(t *testing.T) {
	for _, p := range Profiles() {
		g, err := p.Generator(1)
		if err != nil {
			t.Errorf("%s: generator failed: %v", p.Name, err)
			continue
		}
		for i := 0; i < 100; i++ {
			g.Next()
		}
	}
}

func TestMeasureReproducesTrafficOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed measurement")
	}
	// The simulated rates should track the static (Sniper-substitute)
	// table: within ~3x for high-traffic benchmarks and preserving the
	// povray << namd << mcf ordering.
	measure := func(name string, n int) Traffic {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Measure(p, n, 42)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	mcf := measure("mcf", 600000)
	namd := measure("namd", 600000)
	povray := measure("povray", 2000000)
	if !(povray.ReadsPerSec < namd.ReadsPerSec && namd.ReadsPerSec < mcf.ReadsPerSec) {
		t.Errorf("ordering violated: povray %.3g namd %.3g mcf %.3g",
			povray.ReadsPerSec, namd.ReadsPerSec, mcf.ReadsPerSec)
	}
	for _, pair := range []struct {
		got  Traffic
		name string
	}{{mcf, "mcf"}, {namd, "namd"}} {
		want, _ := StaticTrafficFor(pair.name)
		ratio := pair.got.ReadsPerSec / want.ReadsPerSec
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: simulated %.3g vs static %.3g reads/s (ratio %.2f)",
				pair.name, pair.got.ReadsPerSec, want.ReadsPerSec, ratio)
		}
	}
	if math.IsNaN(povray.WritesPerSec) {
		t.Error("NaN traffic")
	}
}

func TestMeasureRejectsBadInput(t *testing.T) {
	p, _ := ProfileByName("leela")
	if _, err := Measure(p, 0, 1); err == nil {
		t.Error("zero accesses should fail")
	}
	p.ZipfSkew = 0.5
	if _, err := Measure(p, 100, 1); err == nil {
		t.Error("invalid profile should fail")
	}
}

func TestProfileValidateCatchesErrors(t *testing.T) {
	base, _ := ProfileByName("gcc")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.HotSetBytes = 16 },
		func(p *Profile) { p.LLCFrac = 1.5 },
		func(p *Profile) { p.ZipfSkew = 1.0 },
		func(p *Profile) { p.WriteFrac = -0.1 },
		func(p *Profile) { p.MemOpsPerKiloInstr = 0 },
		func(p *Profile) { p.IPC = 0 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestCalibrationSimulatedVsStaticRankCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite simulation")
	}
	// Simulate every benchmark stand-in and check that the simulator
	// reproduces the static (Sniper-substitute) traffic landscape: a
	// strong Spearman rank correlation across the 23 benchmarks and
	// agreement within ~4x for the high-traffic half (low-traffic
	// benchmarks see only a handful of LLC events in a bounded run, so
	// their rates are noisy by construction).
	type pair struct{ static, simulated float64 }
	pairs := map[string]pair{}
	for _, p := range Profiles() {
		st, err := StaticTrafficFor(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Measure(p, 300000, 7)
		if err != nil {
			t.Fatal(err)
		}
		pairs[p.Name] = pair{static: st.ReadsPerSec, simulated: m.ReadsPerSec}
		if st.ReadsPerSec > 1e6 {
			ratio := m.ReadsPerSec / st.ReadsPerSec
			if ratio < 0.25 || ratio > 4 {
				t.Errorf("%s: simulated %.3g vs static %.3g reads/s (ratio %.2f)",
					p.Name, m.ReadsPerSec, st.ReadsPerSec, ratio)
			}
		}
	}
	// Spearman rank correlation over the two columns.
	names := make([]string, 0, len(pairs))
	for n := range pairs {
		names = append(names, n)
	}
	rank := func(value func(pair) float64) map[string]float64 {
		sorted := append([]string(nil), names...)
		sort.Slice(sorted, func(i, j int) bool {
			return value(pairs[sorted[i]]) < value(pairs[sorted[j]])
		})
		out := map[string]float64{}
		for i, n := range sorted {
			out[n] = float64(i)
		}
		return out
	}
	rs := rank(func(p pair) float64 { return p.static })
	rm := rank(func(p pair) float64 { return p.simulated })
	var d2 float64
	for _, n := range names {
		d := rs[n] - rm[n]
		d2 += d * d
	}
	nf := float64(len(names))
	rho := 1 - 6*d2/(nf*(nf*nf-1))
	if rho < 0.85 {
		t.Errorf("Spearman rank correlation simulated-vs-static = %.3f, want >= 0.85", rho)
	}
}

func TestMeasureAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed measurement")
	}
	rows, err := MeasureAll(100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("MeasureAll returned %d rows, want 23", len(rows))
	}
	for i, p := range Profiles() {
		if rows[i].Benchmark != p.Name {
			t.Errorf("row %d = %s, want %s (canonical order)", i, rows[i].Benchmark, p.Name)
		}
		if rows[i].ReadsPerSec < 0 || rows[i].WritesPerSec < 0 {
			t.Errorf("%s: negative traffic", rows[i].Benchmark)
		}
	}
	// Determinism despite parallel execution.
	again, err := MeasureAll(100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("MeasureAll not deterministic at %s", rows[i].Benchmark)
		}
	}
}
