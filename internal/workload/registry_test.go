package workload

import (
	"strings"
	"testing"
)

func customSource(name string) Source {
	return Source{
		Name:               name,
		Kind:               SourceTrace,
		Description:        "test upload",
		Traffic:            Traffic{Benchmark: name, ReadsPerSec: 1e6, WritesPerSec: 2e5},
		Accesses:           100000,
		TraceSHA256:        "deadbeef",
		MemOpsPerKiloInstr: 300,
		IPC:                1.0,
	}
}

func TestRegistryAddAndLookup(t *testing.T) {
	r := NewRegistry()
	s := customSource("mytrace")
	if err := r.Add(s); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("mytrace")
	if !ok || got != s {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	tr, err := r.Traffic("mytrace")
	if err != nil || tr != s.Traffic {
		t.Fatalf("Traffic = %+v, %v", tr, err)
	}
}

func TestRegistryStaticFallback(t *testing.T) {
	r := NewRegistry()
	s, ok := r.Lookup("mcf")
	if !ok || s.Kind != SourceStatic {
		t.Fatalf("Lookup(mcf) = %+v, %v", s, ok)
	}
	want, _ := StaticTrafficFor("mcf")
	if s.Traffic != want {
		t.Fatalf("static traffic = %+v, want %+v", s.Traffic, want)
	}
	if s.IPC == 0 || s.MemOpsPerKiloInstr == 0 {
		t.Fatal("static source lost its core model parameters")
	}
	if _, err := r.Traffic("no-such-workload"); err == nil {
		t.Fatal("want unknown-workload error")
	}
}

func TestRegistryReservedAndConflicts(t *testing.T) {
	r := NewRegistry()
	static := customSource("mcf")
	if err := r.Add(static); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("adding over a static name: %v", err)
	}

	s := customSource("mine")
	if err := r.Add(s); err != nil {
		t.Fatal(err)
	}
	// Identical re-add is idempotent (job retries, boot recovery).
	if err := r.Add(s); err != nil {
		t.Fatalf("idempotent re-add: %v", err)
	}
	changed := s
	changed.Traffic.ReadsPerSec *= 2
	if err := r.Add(changed); err == nil {
		t.Fatal("want conflict error for a changed re-add")
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	bad := []Source{
		{Name: "UPPER", Kind: SourceTrace, Traffic: Traffic{Benchmark: "UPPER"}},
		{Name: "", Kind: SourceTrace},
		{Name: strings.Repeat("a", 65), Kind: SourceTrace},
		{Name: "ok", Kind: "bogus", Traffic: Traffic{Benchmark: "ok"}},
		{Name: "ok", Kind: SourceTrace, Traffic: Traffic{Benchmark: "other"}},
		{Name: "ok", Kind: SourceTrace, Traffic: Traffic{Benchmark: "ok", ReadsPerSec: -1}},
		{Name: "../evil", Kind: SourceTrace, Traffic: Traffic{Benchmark: "../evil"}},
	}
	for _, s := range bad {
		if err := r.Add(s); err == nil {
			t.Fatalf("Add(%+v) accepted an invalid source", s)
		}
	}
}

func TestRegistryAllOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zz-last", "aa-first"} {
		if err := r.Add(customSource(name)); err != nil {
			t.Fatal(err)
		}
	}
	all := r.All()
	if len(all) != 25 {
		t.Fatalf("All() = %d entries, want 23 static + 2 custom", len(all))
	}
	names := Names()
	for i, n := range names {
		if all[i].Name != n {
			t.Fatalf("All()[%d] = %q, want static order %q", i, all[i].Name, n)
		}
	}
	if all[23].Name != "aa-first" || all[24].Name != "zz-last" {
		t.Fatalf("custom tail = %q, %q", all[23].Name, all[24].Name)
	}
	if got := len(r.Custom()); got != 2 {
		t.Fatalf("Custom() = %d entries", got)
	}
}

func TestExtrapolateMatchesMeasure(t *testing.T) {
	// Extrapolate is the Measure formula factored out; pin the algebra.
	tr := Extrapolate("x", 1000, 250, 300000, 300, 1.0)
	instructions := 300000.0 * 1000 / 300
	seconds := instructions / 1.0 / FrequencyHz
	if want := 1000.0 / seconds * Cores; tr.ReadsPerSec != want {
		t.Fatalf("ReadsPerSec = %g, want %g", tr.ReadsPerSec, want)
	}
	if want := 250.0 / seconds * Cores; tr.WritesPerSec != want {
		t.Fatalf("WritesPerSec = %g, want %g", tr.WritesPerSec, want)
	}
}
