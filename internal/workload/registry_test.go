package workload

import (
	"strings"
	"testing"
)

func customSource(name string) Source {
	return Source{
		Name:               name,
		Kind:               SourceTrace,
		Description:        "test upload",
		Traffic:            Traffic{Benchmark: name, ReadsPerSec: 1e6, WritesPerSec: 2e5},
		Accesses:           100000,
		TraceSHA256:        "deadbeef",
		MemOpsPerKiloInstr: 300,
		IPC:                1.0,
	}
}

func TestRegistryAddAndLookup(t *testing.T) {
	r := NewRegistry()
	s := customSource("mytrace")
	if err := r.Add(s); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("mytrace")
	if !ok || got != s {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	tr, err := r.Traffic("mytrace")
	if err != nil || tr != s.Traffic {
		t.Fatalf("Traffic = %+v, %v", tr, err)
	}
}

func TestRegistryStaticFallback(t *testing.T) {
	r := NewRegistry()
	s, ok := r.Lookup("mcf")
	if !ok || s.Kind != SourceStatic {
		t.Fatalf("Lookup(mcf) = %+v, %v", s, ok)
	}
	want, _ := StaticTrafficFor("mcf")
	if s.Traffic != want {
		t.Fatalf("static traffic = %+v, want %+v", s.Traffic, want)
	}
	if s.IPC == 0 || s.MemOpsPerKiloInstr == 0 {
		t.Fatal("static source lost its core model parameters")
	}
	if _, err := r.Traffic("no-such-workload"); err == nil {
		t.Fatal("want unknown-workload error")
	}
}

func TestRegistryReservedAndConflicts(t *testing.T) {
	r := NewRegistry()
	static := customSource("mcf")
	if err := r.Add(static); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("adding over a static name: %v", err)
	}

	s := customSource("mine")
	if err := r.Add(s); err != nil {
		t.Fatal(err)
	}
	// Identical re-add is idempotent (job retries, boot recovery).
	if err := r.Add(s); err != nil {
		t.Fatalf("idempotent re-add: %v", err)
	}
	changed := s
	changed.Traffic.ReadsPerSec *= 2
	if err := r.Add(changed); err == nil {
		t.Fatal("want conflict error for a changed re-add")
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	bad := []Source{
		{Name: "UPPER", Kind: SourceTrace, Traffic: Traffic{Benchmark: "UPPER"}},
		{Name: "", Kind: SourceTrace},
		{Name: strings.Repeat("a", 65), Kind: SourceTrace},
		{Name: "ok", Kind: "bogus", Traffic: Traffic{Benchmark: "ok"}},
		{Name: "ok", Kind: SourceTrace, Traffic: Traffic{Benchmark: "other"}},
		{Name: "ok", Kind: SourceTrace, Traffic: Traffic{Benchmark: "ok", ReadsPerSec: -1}},
		{Name: "../evil", Kind: SourceTrace, Traffic: Traffic{Benchmark: "../evil"}},
	}
	for _, s := range bad {
		if err := r.Add(s); err == nil {
			t.Fatalf("Add(%+v) accepted an invalid source", s)
		}
	}
}

func TestRegistryAllOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zz-last", "aa-first"} {
		if err := r.Add(customSource(name)); err != nil {
			t.Fatal(err)
		}
	}
	all := r.All()
	if len(all) != 25 {
		t.Fatalf("All() = %d entries, want 23 static + 2 custom", len(all))
	}
	names := Names()
	for i, n := range names {
		if all[i].Name != n {
			t.Fatalf("All()[%d] = %q, want static order %q", i, all[i].Name, n)
		}
	}
	if all[23].Name != "aa-first" || all[24].Name != "zz-last" {
		t.Fatalf("custom tail = %q, %q", all[23].Name, all[24].Name)
	}
	if got := len(r.Custom()); got != 2 {
		t.Fatalf("Custom() = %d entries", got)
	}
}

func TestExtrapolateMatchesMeasure(t *testing.T) {
	// Extrapolate is the Measure formula factored out; pin the algebra.
	tr := Extrapolate("x", 1000, 250, 300000, 300, 1.0)
	instructions := 300000.0 * 1000 / 300
	seconds := instructions / 1.0 / FrequencyHz
	if want := 1000.0 / seconds * Cores; tr.ReadsPerSec != want {
		t.Fatalf("ReadsPerSec = %g, want %g", tr.ReadsPerSec, want)
	}
	if want := 250.0 / seconds * Cores; tr.WritesPerSec != want {
		t.Fatalf("WritesPerSec = %g, want %g", tr.WritesPerSec, want)
	}
}

func aliasSource(name, canonical string, canonicalTraffic Traffic) Source {
	return Source{
		Name:               name,
		Kind:               SourceAlias,
		Traffic:            canonicalTraffic,
		Accesses:           100000,
		TraceSHA256:        "cafef00d",
		MemOpsPerKiloInstr: 300,
		IPC:                1.0,
		AliasOf:            canonical,
		DedupDistance:      0.01,
	}
}

func TestRegistryAlias(t *testing.T) {
	r := NewRegistry()
	canon := customSource("canon")
	if err := r.Add(canon); err != nil {
		t.Fatal(err)
	}
	alias := aliasSource("dup", "canon", canon.Traffic)
	if err := r.Add(alias); err != nil {
		t.Fatal(err)
	}
	// Canonical resolves one hop; non-aliases and unknowns pass through.
	if got := r.Canonical("dup"); got != "canon" {
		t.Fatalf("Canonical(dup) = %q", got)
	}
	if got := r.Canonical("canon"); got != "canon" {
		t.Fatalf("Canonical(canon) = %q", got)
	}
	if got := r.Canonical("nobody"); got != "nobody" {
		t.Fatalf("Canonical(nobody) = %q", got)
	}
	// The alias resolves to the canonical entry's traffic, labeled by the
	// canonical name — what keeps artifacts via the alias byte-identical.
	tr, err := r.Traffic("dup")
	if err != nil || tr != canon.Traffic {
		t.Fatalf("Traffic(dup) = %+v, %v", tr, err)
	}
	if deps := r.Dependents("canon"); len(deps) != 1 || deps[0] != "dup" {
		t.Fatalf("Dependents(canon) = %v", deps)
	}

	// Validation: alias structure errors.
	for _, bad := range []Source{
		{Name: "a1", Kind: SourceAlias, Traffic: Traffic{Benchmark: "a1"}},                          // missing alias_of
		{Name: "a2", Kind: SourceAlias, AliasOf: "a2", Traffic: Traffic{Benchmark: "a2"}},           // self alias
		{Name: "a3", Kind: SourceAlias, AliasOf: "canon", Traffic: Traffic{Benchmark: "a3"}},        // mislabeled traffic
		{Name: "a4", Kind: SourceTrace, AliasOf: "canon", Traffic: Traffic{Benchmark: "a4"}},        // alias_of on non-alias
		{Name: "a5", Kind: SourceAlias, AliasOf: "missing", Traffic: Traffic{Benchmark: "missing"}}, // unknown canonical
	} {
		if err := r.Add(bad); err == nil {
			t.Errorf("Add(%+v) accepted an invalid alias", bad)
		}
	}
	// No chains: an alias cannot point at an alias.
	chain := aliasSource("chain", "dup", canon.Traffic)
	chain.Traffic.Benchmark = "dup"
	if err := r.Add(chain); err == nil || !strings.Contains(err.Error(), "alias") {
		t.Fatalf("alias chain: %v", err)
	}
	// Aliasing a static benchmark is allowed (its traffic is permanent).
	static, _ := StaticTrafficFor("mcf")
	staticAlias := aliasSource("mcf-again", "mcf", static)
	if err := r.Add(staticAlias); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryRemoveOrdering pins the deletion contract: a canonical
// entry with live aliases is refused with an error naming the dependents;
// removing the aliases first unblocks it.
func TestRegistryRemoveOrdering(t *testing.T) {
	r := NewRegistry()
	canon := customSource("canon")
	if err := r.Add(canon); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dup-b", "dup-a"} {
		if err := r.Add(aliasSource(name, "canon", canon.Traffic)); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := r.Remove("mcf"); err == nil || !strings.Contains(err.Error(), "static") {
		t.Fatalf("removing a static benchmark: %v", err)
	}
	if _, err := r.Remove("nobody"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("removing an unknown name: %v", err)
	}
	_, err := r.Remove("canon")
	if err == nil {
		t.Fatal("removed a canonical entry with live aliases")
	}
	// The error lists the dependents, sorted, so the user knows what to
	// remove first.
	if msg := err.Error(); !strings.Contains(msg, "dup-a dup-b") {
		t.Fatalf("dependent listing missing from %q", msg)
	}

	for _, name := range []string{"dup-a", "dup-b"} {
		got, err := r.Remove(name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != name || got.Kind != SourceAlias {
			t.Fatalf("Remove(%s) returned %+v", name, got)
		}
	}
	got, err := r.Remove("canon")
	if err != nil {
		t.Fatalf("removing canon after its aliases: %v", err)
	}
	if got != canon {
		t.Fatalf("Remove(canon) returned %+v", got)
	}
	if _, ok := r.Lookup("canon"); ok {
		t.Fatal("canon still resolvable after Remove")
	}
	// The freed name can be re-registered.
	if err := r.Add(customSource("canon")); err != nil {
		t.Fatal(err)
	}
}
