package workload

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// SourceKind says where a workload's traffic numbers came from.
type SourceKind string

const (
	// SourceStatic is one of the 23 calibrated SPEC CPU2017 entries.
	SourceStatic SourceKind = "static"
	// SourceProfile is an ingested synthetic generator spec.
	SourceProfile SourceKind = "profile"
	// SourceTrace is an ingested user-supplied trace.
	SourceTrace SourceKind = "trace"
	// SourceAlias is a name registered as a near-duplicate of an existing
	// custom workload: it resolves to the canonical entry's traffic and
	// shares every downstream cache keyed by the canonical name.
	SourceAlias SourceKind = "alias"
)

// Source is one workload the DSE can evaluate: a name, its derived LLC
// traffic, and the provenance needed to reproduce or audit the numbers.
type Source struct {
	// Name identifies the workload everywhere a benchmark name is
	// accepted (figures, sweeps, artifact rendering).
	Name string `json:"name"`
	// Kind is the provenance class.
	Kind SourceKind `json:"kind"`
	// Description is free-form provenance text.
	Description string `json:"description,omitempty"`
	// Traffic is the derived continuous-operation LLC load.
	Traffic Traffic `json:"traffic"`
	// Accesses is how many accesses the replay measured (0 for static).
	Accesses uint64 `json:"accesses,omitempty"`
	// TraceSHA256 content-addresses the canonical .ctrace bytes in the
	// store for ingested workloads.
	TraceSHA256 string `json:"trace_sha256,omitempty"`
	// MemOpsPerKiloInstr and IPC are the core model used to extrapolate
	// simulated access counts into wall-clock rates.
	MemOpsPerKiloInstr float64 `json:"mem_ops_per_kilo_instr,omitempty"`
	// IPC is instructions per cycle of the modeled core.
	IPC float64 `json:"ipc,omitempty"`
	// AliasOf names the canonical workload an alias entry resolves to
	// (set only for Kind == SourceAlias); Traffic on an alias is a copy of
	// the canonical entry's, labeled by the canonical name.
	AliasOf string `json:"alias_of,omitempty"`
	// DedupDistance records the normalized signature distance the dedup
	// decision was made at (alias provenance; 0 for an exact re-upload).
	DedupDistance float64 `json:"dedup_distance,omitempty"`
}

// nameRE bounds workload names to something safe in URLs, filenames, and
// CSV cells.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// Validate reports structural errors.
func (s Source) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("workload: invalid name %q (want lowercase [a-z0-9._-], max 64 chars)", s.Name)
	}
	switch s.Kind {
	case SourceStatic, SourceProfile, SourceTrace:
		if s.AliasOf != "" {
			return fmt.Errorf("workload: %s: alias_of is only valid on alias entries", s.Name)
		}
		if s.Traffic.Benchmark != s.Name {
			return fmt.Errorf("workload: %s: traffic is labeled %q", s.Name, s.Traffic.Benchmark)
		}
	case SourceAlias:
		if s.AliasOf == "" {
			return fmt.Errorf("workload: %s: alias entry needs alias_of", s.Name)
		}
		if s.AliasOf == s.Name {
			return fmt.Errorf("workload: %s: alias cannot point at itself", s.Name)
		}
		// An alias carries the canonical entry's traffic verbatim, so it
		// is labeled by the canonical name — the property that keeps
		// artifacts rendered through an alias byte-identical to the
		// canonical workload's.
		if s.Traffic.Benchmark != s.AliasOf {
			return fmt.Errorf("workload: %s: alias traffic is labeled %q, want canonical %q", s.Name, s.Traffic.Benchmark, s.AliasOf)
		}
	default:
		return fmt.Errorf("workload: %s: unknown source kind %q", s.Name, s.Kind)
	}
	return s.Traffic.Validate()
}

// Registry resolves workload names to traffic, layering dynamically
// ingested workloads over the 23 static SPEC entries. It is safe for
// concurrent use; the static layer is immutable and custom entries are
// never mutated in place — they are added, and removed only through
// Remove (which refuses canonical entries that still have aliases) — so
// lookups taken at different times for a live name always agree, the
// property that keeps cached artifact bytes coherent with later renders.
type Registry struct {
	mu     sync.RWMutex
	custom map[string]Source
}

// NewRegistry returns a registry holding only the static entries.
func NewRegistry() *Registry {
	return &Registry{custom: make(map[string]Source)}
}

// IsStatic reports whether name is one of the built-in SPEC entries.
func IsStatic(name string) bool {
	_, err := StaticTrafficFor(name)
	return err == nil
}

// Add registers a custom workload. Static names are reserved, and an
// existing custom name can only be re-added with an identical Source (so
// replayed ingest jobs and boot-time recovery are idempotent) — anything
// else is a conflict. Alias entries additionally require their canonical
// workload to already be registered (and to not be an alias itself, so
// alias chains cannot form).
func (r *Registry) Add(s Source) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Kind == SourceStatic || IsStatic(s.Name) {
		return fmt.Errorf("workload: %q is a reserved static benchmark name", s.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.Kind == SourceAlias {
		canon, ok := r.custom[s.AliasOf]
		if !ok {
			if canon, ok = staticSource(s.AliasOf); !ok {
				return fmt.Errorf("workload: alias %q points at unknown workload %q", s.Name, s.AliasOf)
			}
		}
		if canon.Kind == SourceAlias {
			return fmt.Errorf("workload: alias %q points at alias %q (aliases must point at a canonical entry)", s.Name, s.AliasOf)
		}
	}
	if prev, ok := r.custom[s.Name]; ok {
		if prev != s {
			return fmt.Errorf("workload: %q already registered with different parameters", s.Name)
		}
		return nil
	}
	r.custom[s.Name] = s
	return nil
}

// Canonical resolves a name through at most one alias hop: an alias
// returns its canonical workload's name, everything else (including
// unknown names) returns the name unchanged. Downstream caches keyed by
// Canonical(name) are shared between a workload and all its aliases.
func (r *Registry) Canonical(name string) string {
	r.mu.RLock()
	s, ok := r.custom[name]
	r.mu.RUnlock()
	if ok && s.Kind == SourceAlias {
		return s.AliasOf
	}
	return name
}

// Dependents lists the alias names pointing at name, sorted.
func (r *Registry) Dependents(name string) []string {
	r.mu.RLock()
	var out []string
	for _, s := range r.custom {
		if s.Kind == SourceAlias && s.AliasOf == name {
			out = append(out, s.Name)
		}
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Remove deletes a custom workload and returns the removed Source.
// Static names are permanent, and a canonical entry with live aliases is
// refused with an error listing its dependents — remove the aliases
// first. Callers owning persisted records or response caches keyed by
// the name must purge those alongside (the registry's add-only coherence
// argument extends to removal only because the server drops the cached
// renderings of a removed name before the name can be re-registered).
func (r *Registry) Remove(name string) (Source, error) {
	if IsStatic(name) {
		return Source{}, fmt.Errorf("workload: %q is a static benchmark and cannot be removed", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.custom[name]
	if !ok {
		return Source{}, fmt.Errorf("workload: unknown workload %q", name)
	}
	var deps []string
	for _, c := range r.custom {
		if c.Kind == SourceAlias && c.AliasOf == name {
			deps = append(deps, c.Name)
		}
	}
	if len(deps) > 0 {
		sort.Strings(deps)
		return Source{}, fmt.Errorf("workload: %q is the canonical entry for %d alias(es) %v; remove those first", name, len(deps), deps)
	}
	delete(r.custom, name)
	return s, nil
}

// Lookup resolves a name against custom entries first, then the static
// table.
func (r *Registry) Lookup(name string) (Source, bool) {
	r.mu.RLock()
	s, ok := r.custom[name]
	r.mu.RUnlock()
	if ok {
		return s, true
	}
	return staticSource(name)
}

// Traffic resolves a name to its LLC traffic.
func (r *Registry) Traffic(name string) (Traffic, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return Traffic{}, fmt.Errorf("workload: unknown workload %q", name)
	}
	return s.Traffic, nil
}

// Custom returns the ingested workloads sorted by name.
func (r *Registry) Custom() []Source {
	r.mu.RLock()
	out := make([]Source, 0, len(r.custom))
	for _, s := range r.custom {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns every workload: the static table in canonical order, then
// the custom entries sorted by name.
func (r *Registry) All() []Source {
	out := make([]Source, 0, 23+len(r.custom))
	for _, name := range Names() {
		s, _ := staticSource(name)
		out = append(out, s)
	}
	return append(out, r.Custom()...)
}

// staticSource materializes a static table entry as a Source.
func staticSource(name string) (Source, bool) {
	t, err := StaticTrafficFor(name)
	if err != nil {
		return Source{}, false
	}
	s := Source{Name: name, Kind: SourceStatic, Traffic: t}
	if p, err := ProfileByName(name); err == nil {
		s.Description = p.Description
		s.MemOpsPerKiloInstr = p.MemOpsPerKiloInstr
		s.IPC = p.IPC
	}
	return s, true
}
