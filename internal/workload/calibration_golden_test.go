package workload

// Calibration-drift golden test: the full simulated traffic table — every
// benchmark stand-in replayed from a fixed seed and extrapolated through
// the shared formula — is pinned byte for byte against the static
// (Sniper-substitute) table under testdata/golden/. Any change to the
// profiles, the cache hierarchy, the generators, or the extrapolation
// constants shows up here as a byte diff, not as a silently shifted
// figure.
//
// Refresh after an intentional model change with:
//
//	go test ./internal/workload -run CalibrationGolden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCalibration = flag.Bool("update", false, "rewrite the calibration golden snapshot")

// Fixed replay window and seed: big enough that high-traffic benchmarks
// see thousands of LLC events and dirty lines start aging out of the L2
// (so the write columns carry signal), small enough to keep the suite
// quick.
const (
	calibrationAccesses = 400000
	calibrationSeed     = 7
)

// calibrationCSV renders the drift table in canonical benchmark order.
func calibrationCSV(rows []Traffic) (string, error) {
	var b strings.Builder
	b.WriteString("benchmark,static_reads_per_sec,simulated_reads_per_sec,read_ratio,static_writes_per_sec,simulated_writes_per_sec\n")
	for _, m := range rows {
		st, err := StaticTrafficFor(m.Benchmark)
		if err != nil {
			return "", err
		}
		ratio := 0.0
		if st.ReadsPerSec > 0 {
			ratio = m.ReadsPerSec / st.ReadsPerSec
		}
		fmt.Fprintf(&b, "%s,%.6g,%.6g,%.4f,%.6g,%.6g\n",
			m.Benchmark, st.ReadsPerSec, m.ReadsPerSec, ratio, st.WritesPerSec, m.WritesPerSec)
	}
	return b.String(), nil
}

func TestCalibrationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite simulation")
	}
	rows, err := MeasureAll(calibrationAccesses, calibrationSeed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := calibrationCSV(rows)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "calibration.csv")
	if *updateCalibration {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d benchmarks)", path, len(rows))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing calibration golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("simulated traffic table drifted from the golden snapshot "+
			"(%d bytes vs %d); diff %s and rerun with -update if the model change is intentional",
			len(got), len(want), path)
	}
}
