package workload

import (
	"fmt"
	"sort"
)

// Traffic is the LLC load of one benchmark under continuous operation:
// total read and write accesses per second reaching the shared LLC across
// all 8 rate copies at 5 GHz — exactly the quantity the paper extrapolates
// from Sniper access counts and plots benchmarks by in Figs. 5 and 7.
type Traffic struct {
	// Benchmark names the workload.
	Benchmark string `json:"benchmark"`
	// ReadsPerSec and WritesPerSec are LLC accesses per second.
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`
}

// AtFrequency rescales the traffic to a different core clock: the rates
// are stated at the Table I 5 GHz clock, and a core issuing the same
// instruction stream at frequency f generates LLC accesses f/5GHz as fast.
// The default frequency (or zero) returns the receiver unchanged — exact,
// so default-clock evaluations stay byte-identical.
func (t Traffic) AtFrequency(frequencyHz float64) Traffic {
	if frequencyHz == 0 || frequencyHz == DefaultFrequencyHz {
		return t
	}
	scale := frequencyHz / DefaultFrequencyHz
	t.ReadsPerSec *= scale
	t.WritesPerSec *= scale
	return t
}

// WriteReadRatio returns writes per read (0 when idle).
func (t Traffic) WriteReadRatio() float64 {
	if t.ReadsPerSec == 0 {
		return 0
	}
	return t.WritesPerSec / t.ReadsPerSec
}

// Validate reports negative rates.
func (t Traffic) Validate() error {
	if t.ReadsPerSec < 0 || t.WritesPerSec < 0 {
		return fmt.Errorf("workload: %s: negative traffic", t.Benchmark)
	}
	return nil
}

// StaticTraffic returns the Sniper-substitute per-benchmark LLC rates the
// figures are generated from. The values are consistent with the synthetic
// profiles (rate = Cores * IPC * f * memops * LLCFrac) and are calibrated
// to the paper's traffic landscape:
//
//   - povray and exchange2 sit below 5e4 reads/s (Table II low band);
//   - eight benchmarks occupy the 5e4–8e6 band;
//   - mcf is the read-traffic maximum (~1.8e8/s) with the lowest
//     write:read ratio, so its total LLC latency is read-dominated
//     (the Fig. 7 exception);
//   - lbm/bwaves/mcf reach the ~1e8+ regime where cooled cryogenic
//     operation crosses above the 350 K SRAM baseline (Fig. 5).
func StaticTraffic() []Traffic {
	return []Traffic{
		{"perlbench", 3.07e6, 9.2e5},
		{"gcc", 1.02e7, 3.6e6},
		{"mcf", 1.79e8, 1.8e6},
		{"omnetpp", 4.16e7, 1.25e7},
		{"xalancbmk", 7.5e6, 1.9e6},
		{"x264", 1.68e6, 5.0e5},
		{"deepsjeng", 7.8e5, 2.2e5},
		{"leela", 1.39e5, 3.6e4},
		{"exchange2", 1.44e4, 3.6e3},
		{"xz", 3.48e7, 1.0e7},
		{"bwaves", 1.27e8, 3.0e7},
		{"cactuBSSN", 5.22e7, 1.5e7},
		{"namd", 1.41e7, 3.2e6},
		{"parest", 8.3e6, 2.1e6},
		{"povray", 2.51e4, 6.3e3},
		{"lbm", 1.49e8, 4.3e7},
		{"wrf", 2.94e7, 7.9e6},
		{"blender", 3.02e6, 7.9e5},
		{"cam4", 1.66e7, 4.2e6},
		{"imagick", 4.75e5, 1.2e5},
		{"nab", 7.66e5, 1.8e5},
		{"fotonik3d", 8.29e7, 2.4e7},
		{"roms", 6.16e7, 1.8e7},
	}
}

// StaticTrafficFor returns one benchmark's static rates.
func StaticTrafficFor(name string) (Traffic, error) {
	for _, t := range StaticTraffic() {
		if t.Benchmark == name {
			return t, nil
		}
	}
	return Traffic{}, fmt.Errorf("workload: no static traffic for %q", name)
}

// SortedByReads returns the static table ascending by read rate.
func SortedByReads() []Traffic {
	ts := StaticTraffic()
	sort.Slice(ts, func(i, j int) bool { return ts[i].ReadsPerSec < ts[j].ReadsPerSec })
	return ts
}

// Band is a Table II read-traffic regime.
type Band int

const (
	// BandLow is < 5e4 read accesses per second.
	BandLow Band = iota
	// BandMid is 5e4 to 8e6.
	BandMid
	// BandHigh is > 8e6.
	BandHigh
)

// Band boundaries (reads/s) from Table II.
const (
	LowBandMax  = 5e4
	HighBandMin = 8e6
)

// String names the band as Table II prints it.
func (b Band) String() string {
	switch b {
	case BandLow:
		return "<5e4"
	case BandMid:
		return "5e4-8e6"
	case BandHigh:
		return ">8e6"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// Bands returns all bands in ascending traffic order.
func Bands() []Band { return []Band{BandLow, BandMid, BandHigh} }

// BandOf classifies a read rate.
func BandOf(readsPerSec float64) Band {
	switch {
	case readsPerSec < LowBandMax:
		return BandLow
	case readsPerSec <= HighBandMin:
		return BandMid
	default:
		return BandHigh
	}
}

// InBand filters the static table to one band.
func InBand(b Band) []Traffic {
	var out []Traffic
	for _, t := range SortedByReads() {
		if BandOf(t.ReadsPerSec) == b {
			out = append(out, t)
		}
	}
	return out
}

// Representative returns the band's characteristic benchmark: the highest-
// read-traffic member, matching how the paper's Table II summarizes each
// regime by its most demanding workloads.
func Representative(b Band) (Traffic, error) {
	ts := InBand(b)
	if len(ts) == 0 {
		return Traffic{}, fmt.Errorf("workload: band %v is empty", b)
	}
	return ts[len(ts)-1], nil
}
