// Package workload defines the 23 SPECrate CPU2017 benchmarks the paper
// evaluates, in two interchangeable forms:
//
//  1. A static per-benchmark LLC traffic table (reads/s and writes/s under
//     continuous operation at 5 GHz across 8 rate copies) standing in for
//     the Sniper-measured statistics the paper uses. These rates span the
//     paper's range — povray below 5e4 reads/s at the quiet end, mcf near
//     2e8 reads/s (and the lowest write traffic) at the loud end — and are
//     the calibration targets for every traffic-dependent figure.
//
//  2. Synthetic locality profiles from which internal/trace generators and
//     the internal/sim hierarchy regenerate comparable traffic, replacing
//     the Sniper+SPEC substrate that is unavailable here.
package workload

import (
	"fmt"

	"coldtall/internal/parallel"
	"coldtall/internal/sim"
	"coldtall/internal/trace"
)

// Machine constants from Table I.
const (
	// DefaultFrequencyHz is the Table I core clock. Every static traffic
	// table and profile calibration is stated at this clock; the explorer
	// rescales traffic for design points that override it (the frequency
	// axis of the extension studies).
	DefaultFrequencyHz = 5e9
	// FrequencyHz is the historical name of DefaultFrequencyHz, kept for
	// callers that predate the per-point frequency axis.
	FrequencyHz = DefaultFrequencyHz
	// Cores is the number of rate copies.
	Cores = 8
)

// BigPattern selects the long-range access behaviour of a profile.
type BigPattern int

const (
	// PatternChase is dependent pointer chasing (mcf, omnetpp).
	PatternChase BigPattern = iota
	// PatternStream is strided scanning (lbm, bwaves).
	PatternStream
)

// Profile parametrizes the synthetic stand-in for one benchmark.
type Profile struct {
	// Name is the SPEC benchmark name (short form).
	Name string
	// Suite is "intrate" or "fprate".
	Suite string
	// Description summarizes the application domain.
	Description string
	// HotSetBytes is the cache-resident working set (hit in L1/L2).
	HotSetBytes uint64
	// BigSetBytes is the LLC-defeating far working set.
	BigSetBytes uint64
	// Big selects the far-region pattern.
	Big BigPattern
	// LLCFrac is the fraction of memory operations that reference the
	// far region (and thus reach the LLC).
	LLCFrac float64
	// ZipfSkew shapes the hot-region reference stream.
	ZipfSkew float64
	// WriteFrac is the store fraction of memory operations.
	WriteFrac float64
	// MemOpsPerKiloInstr is memory operations per 1000 instructions.
	MemOpsPerKiloInstr float64
	// IPC is the nominal instructions-per-cycle of the benchmark.
	IPC float64
}

// Validate reports parameter errors.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty benchmark name")
	case p.HotSetBytes < 4096 || p.BigSetBytes < 1<<20:
		return fmt.Errorf("workload: %s: working sets too small", p.Name)
	case p.LLCFrac < 0 || p.LLCFrac > 1:
		return fmt.Errorf("workload: %s: LLC fraction %g out of range", p.Name, p.LLCFrac)
	case p.ZipfSkew <= 1:
		return fmt.Errorf("workload: %s: zipf skew must be > 1", p.Name)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("workload: %s: write fraction out of range", p.Name)
	case p.MemOpsPerKiloInstr <= 0 || p.MemOpsPerKiloInstr > 1000:
		return fmt.Errorf("workload: %s: mem ops per kiloinstruction out of range", p.Name)
	case p.IPC <= 0 || p.IPC > 8:
		return fmt.Errorf("workload: %s: IPC out of range", p.Name)
	}
	return nil
}

// Generator builds the synthetic access stream for the profile.
func (p Profile) Generator(seed int64) (trace.Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	hot, err := trace.NewZipf(trace.Region{Base: 0, Size: p.HotSetBytes}, p.ZipfSkew, p.WriteFrac, seed)
	if err != nil {
		return nil, err
	}
	farRegion := trace.Region{Base: 1 << 40, Size: p.BigSetBytes}
	var far trace.Generator
	switch p.Big {
	case PatternStream:
		far, err = trace.NewStream(farRegion, 1, p.WriteFrac, seed+1)
	default:
		far, err = trace.NewPointerChase(farRegion, p.WriteFrac, seed+1)
	}
	if err != nil {
		return nil, err
	}
	if p.LLCFrac <= 0 {
		return hot, nil
	}
	if p.LLCFrac >= 1 {
		return far, nil
	}
	return trace.NewMixture([]trace.Generator{hot, far}, []float64{1 - p.LLCFrac, p.LLCFrac}, seed+2)
}

// Profiles returns the 23 SPECrate 2017 benchmark stand-ins. LLCFrac values
// are derived from each benchmark's static traffic target: rate =
// Cores * IPC * FrequencyHz * (MemOpsPerKiloInstr/1000) * LLCFrac.
func Profiles() []Profile {
	mk := func(name, suite, desc string, hotKB, bigMB uint64, pat BigPattern,
		llcFrac, skew, wf, memKI, ipc float64) Profile {
		return Profile{
			Name: name, Suite: suite, Description: desc,
			HotSetBytes: hotKB << 10, BigSetBytes: bigMB << 20, Big: pat,
			LLCFrac: llcFrac, ZipfSkew: skew, WriteFrac: wf,
			MemOpsPerKiloInstr: memKI, IPC: ipc,
		}
	}
	return []Profile{
		// --- SPECrate 2017 Integer.
		mk("perlbench", "intrate", "Perl interpreter", 24, 64, PatternChase, 2.0e-4, 1.5, 0.30, 320, 1.2),
		mk("gcc", "intrate", "C compiler", 24, 128, PatternChase, 7.5e-4, 1.4, 0.35, 340, 1.0),
		mk("mcf", "intrate", "vehicle scheduling (network simplex)", 20, 512, PatternChase, 3.2e-2, 1.3, 0.02, 350, 0.4),
		mk("omnetpp", "intrate", "discrete event simulation", 24, 256, PatternChase, 4.5e-3, 1.3, 0.30, 330, 0.7),
		mk("xalancbmk", "intrate", "XML transformation", 24, 96, PatternChase, 5.5e-4, 1.5, 0.25, 310, 1.1),
		mk("x264", "intrate", "video encoding", 48, 64, PatternStream, 1.0e-4, 1.6, 0.30, 280, 1.5),
		mk("deepsjeng", "intrate", "chess (alpha-beta search)", 32, 48, PatternChase, 5.0e-5, 1.6, 0.28, 300, 1.3),
		mk("leela", "intrate", "Go (Monte Carlo tree search)", 28, 48, PatternChase, 1.0e-5, 1.7, 0.26, 290, 1.2),
		mk("exchange2", "intrate", "recursive puzzle solver", 16, 8, PatternChase, 8.0e-7, 1.9, 0.25, 250, 1.8),
		mk("xz", "intrate", "data compression", 32, 192, PatternChase, 3.3e-3, 1.3, 0.29, 330, 0.8),

		// --- SPECrate 2017 Floating Point.
		mk("bwaves", "fprate", "explicit CFD (blast waves)", 32, 384, PatternStream, 1.1e-2, 1.3, 0.24, 360, 0.8),
		mk("cactuBSSN", "fprate", "numerical relativity", 32, 256, PatternStream, 4.8e-3, 1.3, 0.29, 340, 0.8),
		mk("namd", "fprate", "molecular dynamics", 32, 128, PatternChase, 1.1e-3, 1.4, 0.23, 320, 1.0),
		mk("parest", "fprate", "finite element solver", 32, 192, PatternStream, 7.0e-4, 1.4, 0.25, 330, 0.9),
		mk("povray", "fprate", "ray tracing", 24, 16, PatternChase, 1.6e-6, 1.8, 0.25, 280, 1.4),
		mk("lbm", "fprate", "lattice Boltzmann fluid dynamics", 24, 384, PatternStream, 1.4e-2, 1.3, 0.29, 380, 0.7),
		mk("wrf", "fprate", "weather forecasting", 32, 256, PatternStream, 2.4e-3, 1.4, 0.27, 340, 0.9),
		mk("blender", "fprate", "3D rendering", 48, 96, PatternChase, 2.1e-4, 1.5, 0.26, 300, 1.2),
		mk("cam4", "fprate", "atmosphere modeling", 32, 256, PatternStream, 1.4e-3, 1.4, 0.25, 330, 0.9),
		mk("imagick", "fprate", "image manipulation", 32, 48, PatternStream, 3.3e-5, 1.6, 0.25, 300, 1.2),
		mk("nab", "fprate", "molecular modeling", 28, 32, PatternChase, 5.5e-5, 1.6, 0.24, 290, 1.2),
		mk("fotonik3d", "fprate", "electromagnetic solver (FDTD)", 32, 320, PatternStream, 7.2e-3, 1.3, 0.29, 360, 0.8),
		mk("roms", "fprate", "ocean modeling", 32, 288, PatternStream, 5.5e-3, 1.3, 0.29, 350, 0.8),
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists all benchmark names in canonical order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Measure replays the profile through the Table I hierarchy and
// extrapolates continuous-operation LLC traffic rates, the way the paper
// extrapolates Sniper access counts: per-copy access counts over simulated
// time, scaled to all rate copies.
//
// The first quarter of the replay warms the hierarchy and is excluded from
// the counts — otherwise compulsory misses of the cache-resident working
// set would swamp the steady-state LLC traffic of low-traffic benchmarks.
func Measure(p Profile, accesses int, seed int64) (Traffic, error) {
	if accesses <= 0 {
		return Traffic{}, fmt.Errorf("workload: accesses must be positive")
	}
	g, err := p.Generator(seed)
	if err != nil {
		return Traffic{}, err
	}
	h, err := sim.NewHierarchy(sim.TableIConfig())
	if err != nil {
		return Traffic{}, err
	}
	warmup := accesses / 4
	h.Run(g, warmup)
	before := h.LLCStats()
	measured := accesses - warmup
	h.Run(g, measured)
	llc := h.LLCStats()
	return Extrapolate(p.Name, llc.Reads-before.Reads, llc.Writes-before.Writes,
		uint64(measured), p.MemOpsPerKiloInstr, p.IPC), nil
}

// Extrapolate converts an LLC access count measured over a replay window
// into continuous-operation rates the way the paper extrapolates Sniper
// statistics: the window's accesses imply simulated wall-clock time
// through the core model (memory operations per kiloinstruction and IPC
// at the Table I clock), and per-copy LLC counts scale to all rate
// copies. It is the single formula shared by profile calibration, llcsim,
// and trace ingestion.
func Extrapolate(name string, llcReads, llcWrites, accesses uint64, memOpsPerKiloInstr, ipc float64) Traffic {
	return ExtrapolateAtFrequency(name, llcReads, llcWrites, accesses, memOpsPerKiloInstr, ipc, DefaultFrequencyHz)
}

// ExtrapolateAtFrequency is Extrapolate with an explicit core clock: the
// same access counts imply proportionally less simulated wall-clock time at
// a faster clock, so LLC rates scale linearly with frequency. It is the
// formula the per-point frequency axis threads through — Extrapolate is the
// Table I specialization.
func ExtrapolateAtFrequency(name string, llcReads, llcWrites, accesses uint64, memOpsPerKiloInstr, ipc, frequencyHz float64) Traffic {
	instructions := float64(accesses) * 1000 / memOpsPerKiloInstr
	seconds := instructions / ipc / frequencyHz
	return Traffic{
		Benchmark:    name,
		ReadsPerSec:  float64(llcReads) / seconds * Cores,
		WritesPerSec: float64(llcWrites) / seconds * Cores,
	}
}

// MeasureAll simulates every benchmark stand-in on the shared worker pool
// and returns the traffic table in canonical order — the full
// Sniper-substitute run the static table is calibrated against. Each
// benchmark replays from its own fixed seed, so the table is identical at
// any worker count.
func MeasureAll(accesses int, seed int64) ([]Traffic, error) {
	profiles := Profiles()
	return parallel.Map(len(profiles), 0, func(i int) (Traffic, error) {
		return Measure(profiles[i], accesses, seed)
	})
}
