package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"coldtall/internal/cell"
)

func TestSECDEDShape(t *testing.T) {
	e := SECDED()
	if e.WordBits() != 72 {
		t.Errorf("SECDED word = %d bits, want 72", e.WordBits())
	}
	if math.Abs(e.Overhead()-0.125) > 1e-12 {
		t.Errorf("SECDED overhead = %g, want 0.125 (the paper's ECC capacity overhead)", e.Overhead())
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWordFailureProbLimits(t *testing.T) {
	e := SECDED()
	if got := e.WordFailureProb(0); got != 0 {
		t.Errorf("p=0 should never fail, got %g", got)
	}
	if got := e.WordFailureProb(1); got != 1 {
		t.Errorf("p=1 should always fail, got %g", got)
	}
	// For small p, SECDED fails ~ C(72,2) p^2.
	p := 1e-6
	want := binom(72, 2) * p * p
	got := e.WordFailureProb(p)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("small-p failure %.3e, want ~%.3e", got, want)
	}
}

func TestECCBeatsNoECC(t *testing.T) {
	p := 1e-5
	with := SECDED().WordFailureProb(p)
	without := None().WordFailureProb(p)
	if with >= without {
		t.Errorf("SECDED (%.3e) should beat no ECC (%.3e)", with, without)
	}
	// No-ECC failure at small p is ~ n*p.
	if math.Abs(without-64*p)/(64*p) > 0.01 {
		t.Errorf("no-ECC failure %.3e, want ~%.3e", without, 64*p)
	}
}

func TestBlockFailureProbAggregates(t *testing.T) {
	e := SECDED()
	p := 1e-5
	word := e.WordFailureProb(p)
	block := e.BlockFailureProb(p, 512)
	want := 1 - math.Pow(1-word, 8)
	if math.Abs(block-want)/want > 1e-9 {
		t.Errorf("block failure %.3e, want %.3e", block, want)
	}
	if block <= word {
		t.Error("block (8 words) should fail more often than one word")
	}
}

func TestBinom(t *testing.T) {
	cases := map[[2]int]float64{
		{72, 0}: 1, {72, 1}: 72, {72, 2}: 2556, {5, 5}: 1, {5, 6}: 0, {5, -1}: 0,
	}
	for in, want := range cases {
		if got := binom(in[0], in[1]); got != want {
			t.Errorf("binom(%d,%d) = %g, want %g", in[0], in[1], got, want)
		}
	}
}

func TestRetentionModelTail(t *testing.T) {
	r := RetentionModel{MedianS: 1e-3, Sigma: DefaultRetentionSigma}
	// At the median, half the cells fail.
	if got := r.WeakCellProb(1e-3); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CDF at median = %g, want 0.5", got)
	}
	// A 10x refresh margin leaves a tiny weak tail.
	tail := r.WeakCellProb(1e-4)
	if tail <= 0 || tail > 1e-6 {
		t.Errorf("weak tail at 10x margin = %.3e, want tiny but positive", tail)
	}
	// Monotonic in interval.
	if r.WeakCellProb(2e-4) <= tail {
		t.Error("longer interval must have more weak cells")
	}
	// Infinite median (static cell) never fails.
	static := RetentionModel{MedianS: math.Inf(1), Sigma: 0.4}
	if static.WeakCellProb(100) != 0 {
		t.Error("static cells must not have retention failures")
	}
}

func TestRefreshIntervalForInvertsWeakCellProb(t *testing.T) {
	r := RetentionModel{MedianS: 1e-3, Sigma: DefaultRetentionSigma}
	for _, target := range []float64{1e-9, 1e-6, 1e-3} {
		iv := r.RefreshIntervalFor(target)
		got := r.WeakCellProb(iv)
		if got > target*1.01 || got < target*0.99 {
			t.Errorf("target %.0e: interval %.3e gives %.3e", target, iv, got)
		}
	}
}

func TestWearModel(t *testing.T) {
	w := WearModel{MedianCycles: 1e9, Sigma: DefaultWearSigma}
	if got := w.DeadFraction(1e9); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("dead fraction at median = %g, want 0.5", got)
	}
	if w.DeadFraction(1e7) >= w.DeadFraction(1e8) {
		t.Error("dead fraction must grow with cycles")
	}
	inf := WearModel{MedianCycles: math.Inf(1), Sigma: 0.5}
	if inf.DeadFraction(1e20) != 0 {
		t.Error("infinite endurance never wears")
	}
}

func TestRawWriteBEROrdering(t *testing.T) {
	// STT's stochastic MTJ switching is the worst; CMOS storage is clean.
	if !(RawWriteBER(cell.STTRAM) > RawWriteBER(cell.PCM)) {
		t.Error("STT should have higher write BER than PCM")
	}
	if RawWriteBER(cell.SRAM) >= RawWriteBER(cell.PCM) {
		t.Error("SRAM write BER should be negligible vs eNVMs")
	}
}

func TestAnalyzePCMvsSTT(t *testing.T) {
	pcm, err := cell.Tentpole(cell.PCM, cell.Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	stt, err := cell.Tentpole(cell.STTRAM, cell.Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ECC: SECDED(), WritesPerSec: 2e6, BlockDataBits: 512,
		TotalBits: 1.51e8, RetentionS: math.Inf(1), WriteRetries: 1}
	repPCM, err := Analyze(pcm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	repSTT, err := Analyze(stt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's endurance concern: PCM wears out in years, STT lasts
	// effectively forever.
	if repPCM.WearLifetimeYears > 100 || repPCM.WearLifetimeYears < 0.5 {
		t.Errorf("PCM wear lifetime %.1f years, want single-digit-to-decades", repPCM.WearLifetimeYears)
	}
	if repSTT.WearLifetimeYears < 1e6 {
		t.Errorf("STT wear lifetime %.3g years, want effectively unlimited", repSTT.WearLifetimeYears)
	}
	// But STT has the worse soft write-error exposure.
	if repSTT.SoftFIT <= repPCM.SoftFIT {
		t.Error("STT soft FIT should exceed PCM's (stochastic switching)")
	}
	if repPCM.RetentionWeakBitsPerRefresh != 0 {
		t.Error("non-volatile cells must not report retention weak bits")
	}
}

func TestAnalyzeEDRAMRetention(t *testing.T) {
	e := cell.NewEDRAM3T()
	rep, err := Analyze(e, Config{ECC: SECDED(), WritesPerSec: 1e6,
		BlockDataBits: 512, TotalBits: 1.51e8, RetentionS: 0.775e-3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RetentionWeakBitsPerRefresh <= 0 {
		t.Error("dynamic cells should report a weak-bit tail")
	}
	if !math.IsInf(rep.WearLifetimeYears, 1) {
		t.Error("eDRAM must not wear out")
	}
	// With the 10x refresh margin the weak tail stays correctable-scale
	// (a handful of bits in 150M, well within SECDED's per-word reach).
	if rep.RetentionWeakBitsPerRefresh > 100 {
		t.Errorf("weak bits per refresh = %.1f, want small", rep.RetentionWeakBitsPerRefresh)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	c := cell.NewSRAM6T()
	good := Config{ECC: SECDED(), WritesPerSec: 1, BlockDataBits: 512,
		TotalBits: 1e8, RetentionS: math.Inf(1)}
	bad1 := good
	bad1.ECC = ECC{DataBits: -1}
	if _, err := Analyze(c, bad1); err == nil {
		t.Error("bad ECC should fail")
	}
	bad2 := good
	bad2.WritesPerSec = -1
	if _, err := Analyze(c, bad2); err == nil {
		t.Error("negative write rate should fail")
	}
	badCell := c
	badCell.AreaF2 = -1
	if _, err := Analyze(badCell, good); err == nil {
		t.Error("invalid cell should fail")
	}
}

func TestWordFailureProbMonotoneProperty(t *testing.T) {
	e := SECDED()
	f := func(a, b uint16) bool {
		p1 := float64(a) / 65536 / 100
		p2 := float64(b) / 65536 / 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return e.WordFailureProb(p1) <= e.WordFailureProb(p2)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreCorrectionHelpsProperty(t *testing.T) {
	// A code correcting more bits never fails more often.
	f := func(a uint16) bool {
		p := float64(a%1000+1) / 1e6
		weak := ECC{DataBits: 64, CheckBits: 8, CorrectBits: 1}
		strong := ECC{DataBits: 64, CheckBits: 16, CorrectBits: 2}
		// Compare at equal word sizes to isolate correction strength.
		strong.CheckBits = 8
		return strong.WordFailureProb(p) <= weak.WordFailureProb(p)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
