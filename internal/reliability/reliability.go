// Package reliability models the fault behaviour NVMExplorer takes as an
// application input: raw write-error rates of the stochastic eNVM switching
// processes, retention-tail failures of dynamic cells, endurance wear-out,
// and the SECDED ECC the paper's LLC carries (the 12.5% check-bit overhead
// of an "ECC-supported" cache is exactly a (72,64) Hamming+parity code).
//
// The models are analytical: binomial word-failure combinatorics over a raw
// bit error rate, log-normal tails for per-cell retention and endurance
// spreads, and rate-to-FIT conversions. They answer the questions the
// paper's summary raises — "eNVMs exhibit varying endurance
// characteristics, which may be a limitation particularly for PCM and RRAM
// solutions" — quantitatively.
package reliability

import (
	"fmt"
	"math"

	"coldtall/internal/cell"
)

// ECC describes a per-word error-correcting code.
type ECC struct {
	// DataBits is the protected payload per word.
	DataBits int
	// CheckBits is the redundancy per word.
	CheckBits int
	// CorrectBits is the number of bit errors corrected per word.
	CorrectBits int
}

// SECDED returns the (72,64) single-error-correct double-error-detect code
// implied by the LLC's 12.5% ECC overhead.
func SECDED() ECC {
	return ECC{DataBits: 64, CheckBits: 8, CorrectBits: 1}
}

// None returns an ECC-less configuration (raw exposure).
func None() ECC {
	return ECC{DataBits: 64, CheckBits: 0, CorrectBits: 0}
}

// WordBits returns the total stored bits per word.
func (e ECC) WordBits() int { return e.DataBits + e.CheckBits }

// Overhead returns check bits per data bit.
func (e ECC) Overhead() float64 { return float64(e.CheckBits) / float64(e.DataBits) }

// Validate reports configuration errors.
func (e ECC) Validate() error {
	if e.DataBits <= 0 || e.CheckBits < 0 || e.CorrectBits < 0 {
		return fmt.Errorf("reliability: invalid ECC %+v", e)
	}
	return nil
}

// WordFailureProb returns the probability that one stored word has more
// errors than the code corrects, given an independent per-bit error
// probability p.
func (e ECC) WordFailureProb(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	n := e.WordBits()
	if p < 1e-4 {
		// Direct tail sum: the complement form cancels catastrophically
		// once the failure probability falls below float64 epsilon. The
		// leading terms beyond the correction limit dominate.
		var fail float64
		for k := e.CorrectBits + 1; k <= e.CorrectBits+4 && k <= n; k++ {
			fail += binom(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
		}
		return fail
	}
	// P(fail) = 1 - sum_{k=0..CorrectBits} C(n,k) p^k (1-p)^(n-k).
	ok := 0.0
	for k := 0; k <= e.CorrectBits; k++ {
		ok += binom(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	if ok > 1 {
		ok = 1
	}
	return 1 - ok
}

// BlockFailureProb returns the probability that at least one word of a
// block fails, for blockDataBits of payload.
func (e ECC) BlockFailureProb(p float64, blockDataBits int) float64 {
	words := float64(blockDataBits) / float64(e.DataBits)
	w := e.WordFailureProb(p)
	if w < 1e-9 {
		// Union bound, exact to first order and immune to the
		// 1-(1-w)^n cancellation.
		return words * w
	}
	return 1 - math.Pow(1-w, words)
}

// binom computes the binomial coefficient for small k.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}

// lognormalCDF evaluates P(X <= x) for ln X ~ N(ln(median), sigma^2).
func lognormalCDF(x, median, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - math.Log(median)) / (sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// RetentionModel captures the retention-time spread of a dynamic cell
// population: the median tracks the array model's retention, the log-normal
// sigma captures the weak-bit tail that dominates DRAM-style retention
// failures.
type RetentionModel struct {
	// MedianS is the median cell retention in seconds.
	MedianS float64
	// Sigma is the log-normal spread (typical gain cells: ~0.4).
	Sigma float64
}

// DefaultRetentionSigma is the spread used when none is specified.
const DefaultRetentionSigma = 0.4

// WeakCellProb returns the probability that a cell's retention falls below
// the refresh interval — i.e. the per-bit retention-failure probability per
// refresh period.
func (r RetentionModel) WeakCellProb(refreshIntervalS float64) float64 {
	if math.IsInf(r.MedianS, 1) {
		return 0
	}
	return lognormalCDF(refreshIntervalS, r.MedianS, r.Sigma)
}

// RefreshIntervalFor returns the refresh interval that bounds the weak-cell
// probability at target (inverse of WeakCellProb).
func (r RetentionModel) RefreshIntervalFor(target float64) float64 {
	if target <= 0 || target >= 1 {
		return r.MedianS
	}
	// Invert the log-normal CDF via the inverse error function expressed
	// through bisection (monotone, well-conditioned).
	lo, hi := r.MedianS*1e-9, r.MedianS*1e3
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if r.WeakCellProb(mid) > target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// WearModel captures endurance spread across an eNVM population.
type WearModel struct {
	// MedianCycles is the median endurance.
	MedianCycles float64
	// Sigma is the log-normal spread (typical: ~0.5).
	Sigma float64
}

// DefaultWearSigma is the spread used when none is specified.
const DefaultWearSigma = 0.5

// DeadFraction returns the fraction of cells worn out after the given
// number of write cycles.
func (w WearModel) DeadFraction(cycles float64) float64 {
	if math.IsInf(w.MedianCycles, 1) || cycles <= 0 {
		return 0
	}
	return lognormalCDF(cycles, w.MedianCycles, w.Sigma)
}

// RawWriteBER returns the per-bit write error probability of a technology's
// stochastic switching process (soft errors, before wear). Values follow
// the published orders of magnitude: MTJ switching is stochastic (STT worst
// without write-verify), PCM and RRAM fail mainly through resistance-window
// drift and are better per attempt.
func RawWriteBER(t cell.Technology) float64 {
	switch t {
	case cell.STTRAM:
		return 1e-6
	case cell.SOTRAM:
		return 1e-7
	case cell.PCM:
		return 1e-7
	case cell.RRAM:
		return 3e-7
	default:
		return 1e-12 // CMOS storage: SEU-class only
	}
}

// Config parametrizes an Analyze run.
type Config struct {
	// ECC is the applied per-word code.
	ECC ECC
	// WritesPerSec is the block write rate across the whole LLC.
	WritesPerSec float64
	// BlockDataBits is the payload per access; TotalBits the LLC size.
	BlockDataBits, TotalBits float64
	// RetentionS is the cell population's median retention at the
	// operating temperature (+Inf for static and non-volatile cells).
	RetentionS float64
	// RefreshIntervalS is the controller's fixed refresh interval; 0
	// defaults to RetentionS/10 (temperature-adaptive refresh). Fixing
	// it at the hot-corner value shows cooling shrinking the weak-bit
	// tail by orders of magnitude.
	RefreshIntervalS float64
	// WriteRetries is the number of write-verify retry rounds after the
	// first attempt; each round multiplies the residual bit error
	// probability by the raw BER. eNVM controllers verify writes, so the
	// default (via Analyze when negative) is 1.
	WriteRetries int
}

// Report is the reliability summary of one LLC design point under a write
// stream.
type Report struct {
	// Tech is the cell technology.
	Tech cell.Technology
	// ECC is the applied code.
	ECC ECC
	// SoftUncorrectablePerWrite is the probability one block write leaves
	// an uncorrectable word (write-noise only, new device).
	SoftUncorrectablePerWrite float64
	// SoftFIT is soft uncorrectable failures per 1e9 device-hours at the
	// given write rate.
	SoftFIT float64
	// WearLifetimeYears is the time until wear-out makes one block write
	// uncorrectable with 50% probability (ideal wear leveling).
	WearLifetimeYears float64
	// RetentionWeakBitsPerRefresh is the expected weak (failing) bits per
	// refresh pass for dynamic cells (0 for static/non-volatile).
	RetentionWeakBitsPerRefresh float64
}

// Analyze produces the reliability report for a cell under the given
// workload and controller configuration.
func Analyze(c cell.Cell, cfg Config) (Report, error) {
	if err := cfg.ECC.Validate(); err != nil {
		return Report{}, err
	}
	if err := c.Validate(); err != nil {
		return Report{}, err
	}
	if cfg.WritesPerSec < 0 || cfg.BlockDataBits <= 0 || cfg.TotalBits <= 0 {
		return Report{}, fmt.Errorf("reliability: invalid workload parameters")
	}
	retries := cfg.WriteRetries
	if retries < 0 {
		retries = 1
	}
	rep := Report{Tech: c.Tech, ECC: cfg.ECC}

	// Write-verify: each retry round independently re-attempts failing
	// bits, so the residual per-bit error is BER^(retries+1).
	ber := math.Pow(RawWriteBER(c.Tech), float64(retries+1))
	rep.SoftUncorrectablePerWrite = cfg.ECC.BlockFailureProb(ber, int(cfg.BlockDataBits))
	// FIT: uncorrectable events per 1e9 hours.
	rep.SoftFIT = rep.SoftUncorrectablePerWrite * cfg.WritesPerSec * 3600 * 1e9

	if math.IsInf(c.EnduranceCycles, 1) || cfg.WritesPerSec == 0 {
		rep.WearLifetimeYears = math.Inf(1)
	} else {
		wear := WearModel{MedianCycles: c.EnduranceCycles, Sigma: DefaultWearSigma}
		// Ideal wear leveling: every block ages at writesPerSec /
		// (totalBits/blockDataBits) writes per second. A block write is
		// uncorrectable once the expected dead bits per ECC word reach
		// the correction limit; solve for the cycle count where the
		// word failure probability from dead cells hits 50%.
		blocks := cfg.TotalBits / cfg.BlockDataBits
		perBlockRate := cfg.WritesPerSec / blocks
		if perBlockRate <= 0 {
			rep.WearLifetimeYears = math.Inf(1)
		} else {
			cycles := solveWearCycles(wear, cfg.ECC)
			rep.WearLifetimeYears = cycles / perBlockRate / (365.25 * 24 * 3600)
		}
	}

	if !math.IsInf(cfg.RetentionS, 1) && cfg.RetentionS > 0 {
		r := RetentionModel{MedianS: cfg.RetentionS, Sigma: DefaultRetentionSigma}
		interval := cfg.RefreshIntervalS
		if interval <= 0 {
			// Temperature-adaptive refresh at one tenth of the median
			// retention (the margin the array model's refresh power
			// assumes).
			interval = cfg.RetentionS / 10
		}
		rep.RetentionWeakBitsPerRefresh = r.WeakCellProb(interval) * cfg.TotalBits
	}
	return rep, nil
}

// solveWearCycles finds the write-cycle count at which the dead-cell
// fraction makes an ECC word uncorrectable with 50% probability.
func solveWearCycles(w WearModel, ecc ECC) float64 {
	target := 0.5
	lo, hi := w.MedianCycles*1e-6, w.MedianCycles*1e3
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if ecc.WordFailureProb(w.DeadFraction(mid)) > target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Sqrt(lo * hi)
}
