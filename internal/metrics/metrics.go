// Package metrics is the serving stack's observability substrate: atomic
// counters, gauges, and fixed-bucket histograms collected in a registry
// that renders the Prometheus text exposition format. Standard library
// only — the server must not grow a client_golang dependency for three
// metric kinds.
//
// Metric names may carry a fixed label set in the name itself
// ("coldtall_http_requests_total{code=\"200\"}"); the registry groups such
// series under one HELP/TYPE header per base name, which is what the
// exposition format requires. Creation is idempotent: asking for an
// existing name returns the existing metric, so handlers can create
// per-label series lazily on the request path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative n is ignored — counters only go
// up; use a Gauge for values that fall).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that goes up and down (in-flight requests, pool
// occupancy).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FGauge is a float-valued gauge for derived rates (per-worker points per
// second) that an integer Gauge would truncate to zero.
type FGauge struct {
	v atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *FGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram counts observations into cumulative buckets by upper bound,
// Prometheus-style: bucket i counts observations <= bounds[i], plus an
// implicit +Inf bucket, a running sum, and a total count. Observe is
// lock-free (one atomic add per bucket level crossed plus a CAS loop for
// the float sum), so it sits on the request hot path.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are latency buckets in seconds suited to this service: cache
// hits land in the sub-millisecond buckets, warm evaluations in the
// milliseconds, cold full-grid sweeps in the seconds.
func DefBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// metric is one registered series.
type metric struct {
	name string // full series name, possibly with {labels}
	help string
	kind string // "counter", "gauge", "fgauge", "histogram"
	c    *Counter
	g    *Gauge
	fg   *FGauge
	h    *Histogram
}

// typeName maps the internal kind to the exposition TYPE keyword (an
// FGauge is still a Prometheus gauge).
func typeName(kind string) string {
	if kind == "fgauge" {
		return "gauge"
	}
	return kind
}

// baseName strips a label suffix: `requests_total{code="200"}` ->
// `requests_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Registry holds the registered metrics in registration order and renders
// them in the Prometheus text exposition format. All methods are safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	ordered []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// lookup returns the existing metric for name or registers a new one built
// by mk. It panics if the name is already registered as a different kind —
// that is a programming error, not an operational condition.
func (r *Registry) lookup(name, help, kind string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, kind
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. The name may carry a fixed label set ({code="200"}).
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, "counter", func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, "gauge", func() *metric { return &metric{g: &Gauge{}} }).g
}

// FGauge returns the float gauge registered under name, creating it on
// first use.
func (r *Registry) FGauge(name, help string) *FGauge {
	return r.lookup(name, help, "fgauge", func() *metric { return &metric{fg: &FGauge{}} }).fg
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given upper bounds (ascending; DefBuckets when nil).
// Histogram names must not carry labels — the buckets are the labels.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if strings.IndexByte(name, '{') >= 0 {
		panic(fmt.Sprintf("metrics: histogram %q must not carry labels", name))
	}
	return r.lookup(name, help, "histogram", func() *metric {
		if bounds == nil {
			bounds = DefBuckets()
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
		h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		return &metric{h: h}
	}).h
}

// fmtFloat renders a bucket bound the way Prometheus expects (+Inf spelled
// out).
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in the text exposition
// format, one HELP/TYPE header per base name (series sharing a base name —
// label variants — are grouped under the first one's header).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ordered := make([]*metric, len(r.ordered))
	copy(ordered, r.ordered)
	r.mu.Unlock()

	seen := make(map[string]bool)
	for _, m := range ordered {
		base := baseName(m.name)
		if !seen[base] {
			seen[base] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, m.help, base, typeName(m.kind)); err != nil {
				return err
			}
		}
		switch m.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value()); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value()); err != nil {
				return err
			}
		case "fgauge":
			if _, err := fmt.Fprintf(w, "%s %g\n", m.name, m.fg.Value()); err != nil {
				return err
			}
		case "histogram":
			h := m.h
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, fmtFloat(bound), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", m.name, h.Sum(), m.name, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
