package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("inflight", "in-flight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Errorf("gauge = %d, want 42", got)
	}
}

func TestRegistryIdempotentCreation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "hits")
	b := r.Counter("hits_total", "hits")
	if a != b {
		t.Error("same name must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters diverged")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("sum = %g, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValueIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []float64{1})
	h.Observe(1) // le="1" is <=, so exactly 1 belongs in the first bucket
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("observation at the bound must land in its bucket:\n%s", b.String())
	}
}

func TestLabeledSeriesShareOneHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter(`codes_total{code="200"}`, "responses").Inc()
	r.Counter(`codes_total{code="429"}`, "responses").Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE codes_total counter") != 1 {
		t.Errorf("labeled series must share one TYPE header:\n%s", out)
	}
	for _, want := range []string{`codes_total{code="200"} 1`, `codes_total{code="429"} 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentObservations runs under -race in CI: every mutation path is
// exercised from many goroutines at once.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "lat", DefBuckets())
	c := r.Counter("n_total", "n")
	g := r.Gauge("inflight", "g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(j%100) / 1000)
				c.Inc()
				g.Inc()
				g.Dec()
				// Lazy per-label creation races against rendering.
				r.Counter(`codes_total{code="200"}`, "responses").Inc()
			}
		}(i)
	}
	var renderErr error
	var b strings.Builder
	for i := 0; i < 50; i++ {
		b.Reset()
		if err := r.WritePrometheus(&b); err != nil {
			renderErr = err
		}
	}
	wg.Wait()
	if renderErr != nil {
		t.Fatal(renderErr)
	}
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}

func TestFGauge(t *testing.T) {
	r := NewRegistry()
	g := r.FGauge(`rate{worker="w1"}`, "throughput")
	if got := g.Value(); got != 0 {
		t.Errorf("zero value = %g, want 0", got)
	}
	g.Set(12.5)
	if got := g.Value(); got != 12.5 {
		t.Errorf("fgauge = %g, want 12.5", got)
	}
	if a, b := r.FGauge(`rate{worker="w1"}`, "throughput"), g; a != b {
		t.Error("same name must return the same fgauge")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// A float gauge is still a Prometheus gauge on the wire, rendered %g.
	if !strings.Contains(out, "# TYPE rate gauge\n") {
		t.Errorf("missing gauge TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `rate{worker="w1"} 12.5`+"\n") {
		t.Errorf("missing %%g-rendered series:\n%s", out)
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Errorf("fgauge lost +Inf: %g", g.Value())
	}
}
