package parallel

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
)

// TestForEachProgressSerial pins the serial reference semantics: progress
// fires once per successful item, in order, with cumulative counts.
func TestForEachProgressSerial(t *testing.T) {
	var seen []int
	err := ForEachProgressContext(context.Background(), 5, 1, func(i int) error {
		return nil
	}, func(done int) { seen = append(seen, done) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("progress fired %d times, want 5: %v", len(seen), seen)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("serial progress out of order: %v", seen)
		}
	}
}

// TestForEachProgressSkipsFailures: failed items do not advance progress —
// done counts completed work, which is what a resumable job checkpoints.
func TestForEachProgressSkipsFailures(t *testing.T) {
	boom := errors.New("boom")
	var seen []int
	err := ForEachProgressContext(context.Background(), 6, 1, func(i int) error {
		if i%2 == 1 {
			return boom
		}
		return nil
	}, func(done int) { seen = append(seen, done) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(seen) != 3 {
		t.Errorf("progress fired %d times, want 3 (failures must not count): %v", len(seen), seen)
	}
}

// TestForEachProgressParallel: with a real pool the done values are a
// permutation of 1..n — each fires exactly once even under contention.
func TestForEachProgressParallel(t *testing.T) {
	const n = 64
	var mu sync.Mutex
	var seen []int
	err := ForEachProgressContext(context.Background(), n, 8, func(i int) error {
		return nil
	}, func(done int) {
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("progress fired %d times, want %d", len(seen), n)
	}
	sort.Ints(seen)
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done values are not a permutation of 1..%d: %v", n, seen)
		}
	}
}

// TestForEachProgressNilIsForEach: the nil-progress path must behave
// exactly like ForEachContext (it is ForEachContext).
func TestForEachProgressNilIsForEach(t *testing.T) {
	calls := 0
	if err := ForEachProgressContext(context.Background(), 3, 1, func(i int) error {
		calls++
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
}
