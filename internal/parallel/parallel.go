// Package parallel provides the concurrency primitives every sweep in the
// repository runs on: a bounded worker pool with deterministic output
// ordering, and a singleflight group that deduplicates concurrent
// computations of the same key. Centralizing them keeps the parallel code
// paths small, audited, and race-detector-clean in one place.
//
// The primitives are deliberately deterministic at the output level: ForEach
// and Map index results by input position, so a parallel sweep produces
// byte-identical artifacts to its serial equivalent no matter how the
// scheduler interleaves the workers. That property is what the golden
// regression tests at the repository root pin down.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values below 1 (the zero value of
// a config field) mean "one worker per available CPU", anything else is
// taken literally. Every layer exposing a parallelism knob funnels it
// through this so 0 always means "as parallel as the hardware allows" and 1
// always means "serial".
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for i in [0, n) on at most workers goroutines
// (normalized through Workers) and returns the first error by input order.
// Work is handed out through a single shared index so the pool load-balances
// uneven items; callers write results into position i of a pre-sized slice,
// which keeps output ordering deterministic regardless of scheduling.
//
// All n items are attempted even after a failure — items are independent in
// every sweep here, and finishing the batch keeps caches warm for the next
// call — but the error reported is always the lowest-index one, so the
// serial and parallel paths surface the same failure.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachContext(context.Background(), n, workers, fn)
}

// ForEachContext is ForEach with cooperative cancellation: once ctx is
// done, no further items are dispatched (items already running finish) and
// the sweep reports the cancellation. A cancelled sweep therefore stops
// burning worker-pool CPU within one item's latency — the property that
// lets an aborted HTTP request or a Ctrl-C on the CLI reclaim the pool
// mid-sweep.
//
// Error precedence: an item error (lowest input index among items that ran)
// wins over the cancellation error, so a sweep that genuinely failed before
// the cancellation still reports its own failure.
func ForEachContext(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachProgressContext(ctx, n, workers, fn, nil)
}

// ForEachProgressContext is ForEachContext with a per-item completion
// hook: progress(done) fires after every item that returns nil, where done
// is the cumulative count of completed items. It is the observation point
// the async job layer reports sweep progress from — a killed-and-resumed
// sweep knows how far it got without recounting work.
//
// The hook may be called concurrently from several workers and the done
// values, while each unique and drawn from 1..n, may arrive out of order;
// callers tracking high-water progress should keep the maximum. A nil
// progress is ignored.
func ForEachProgressContext(ctx context.Context, n, workers int, fn func(i int) error, progress func(done int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// The serial path keeps single-threaded callers allocation-free
		// and is the reference semantics the parallel path must match.
		var first error
		done := 0
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if first != nil {
					return first
				}
				return fmt.Errorf("parallel: sweep cancelled at item %d of %d: %w", i, n, err)
			}
			if err := fn(i); err != nil {
				if first == nil {
					first = err
				}
			} else {
				done++
				if progress != nil {
					progress(done)
				}
			}
		}
		return first
	}
	errs := make([]error, n)
	var next int
	var done atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if errs[i] = safeCall(fn, i); errs[i] == nil && progress != nil {
					progress(int(done.Add(1)))
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("parallel: sweep cancelled: %w", err)
	}
	return nil
}

// safeCall invokes fn(i), converting a panic into an error so one bad item
// cannot take down the whole pool (and with it every sibling sweep).
func safeCall(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: item %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map runs fn over [0, n) on the pool and collects the results in input
// order — the ordered-collect primitive the figure sweeps use.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), n, workers, fn)
}

// MapContext is Map with cooperative cancellation (see ForEachContext).
func MapContext[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachContext(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Flight deduplicates concurrent computations of the same key: while one
// caller computes, every other caller of that key blocks and shares the
// single result. It is the guard between the explorer's check-then-compute
// cache gap and the expensive array optimization behind it.
//
// Unlike golang.org/x/sync/singleflight (not vendored here), completed
// flights are forgotten immediately — memoization stays the caller's
// responsibility, so the explorer's existing cache keeps owning persistence.
type Flight[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	// waiters counts callers sharing this flight beyond the leader (used
	// by tests to deterministically hold a flight open until every
	// follower has joined).
	waiters atomic.Int32
	val     V
	err     error
}

// Do returns the result of fn for key, executing fn at most once across all
// concurrent callers of the same key. The first caller runs fn; callers
// arriving while it is in flight wait and share its result. Callers of
// distinct keys never block each other.
func (f *Flight[V]) Do(key string, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[string]*flightCall[V])
	}
	if c, ok := f.m[key]; ok {
		c.waiters.Add(1)
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("parallel: flight %q panicked: %v", key, r)
			}
		}()
		c.val, c.err = fn()
	}()

	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, c.err
}
