package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachContextPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachContext(ctx, 100, workers, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got != 0 {
			t.Errorf("workers=%d: %d items ran on a pre-cancelled context", workers, got)
		}
	}
}

func TestForEachContextStopsDispatchingAfterCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachContext(ctx, 1000, workers, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight items finish (at most one per worker after the cancel),
		// but the vast majority of the sweep must never be dispatched.
		if got := ran.Load(); got > int64(3+workers) {
			t.Errorf("workers=%d: %d items ran after cancellation", workers, got)
		}
		cancel()
	}
}

func TestForEachContextItemErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachContext(ctx, 10, 1, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the item error to win over cancellation", err)
	}
}

func TestMapContextBackgroundMatchesMap(t *testing.T) {
	square := func(i int) (int, error) { return i * i, nil }
	plain, err := Map(8, 4, square)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := MapContext(context.Background(), 8, 4, square)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != ctxed[i] {
			t.Fatalf("MapContext diverges from Map at %d: %d vs %d", i, ctxed[i], plain[i])
		}
	}
}
