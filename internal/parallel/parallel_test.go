package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 17} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d, want %d", n, got, n)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 257
			counts := make([]int32, n)
			err := ForEach(n, workers, func(i int) error {
				atomic.AddInt32(&counts[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("index %d visited %d times", i, c)
				}
			}
		})
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-5, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

// TestForEachFirstErrorByInputOrder pins the determinism contract: no matter
// which worker fails first in wall-clock time, the reported error is the
// lowest-index failure — identical to what the serial loop would return.
func TestForEachFirstErrorByInputOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			err := ForEach(100, workers, func(i int) error {
				if i%10 == 3 { // fails at 3, 13, 23, ...
					return fmt.Errorf("item %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "item 3" {
				t.Fatalf("got %v, want item 3", err)
			}
		})
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	err := ForEach(8, 4, func(i int) error {
		if i == 5 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 32} {
		got, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapErrorDropsResults(t *testing.T) {
	sentinel := errors.New("nope")
	got, err := Map(10, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if got != nil {
		t.Fatalf("partial results returned alongside error")
	}
}

// TestFlightDedupesConcurrentCallers is the core singleflight guarantee: N
// callers overlapping one in-flight key share exactly one execution. The
// gate stays closed until every follower has registered on the leader's
// flight — without that, a follower scheduled after the leader completed
// would correctly start a fresh flight and the count would exceed one.
func TestFlightDedupesConcurrentCallers(t *testing.T) {
	var f Flight[int]
	var calls atomic.Int32
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	const n = 32

	var wg sync.WaitGroup
	results := make([]int, n)
	errs := make([]error, n)
	run := func(i int) {
		defer wg.Done()
		results[i], errs[i] = f.Do("k", func() (int, error) {
			calls.Add(1)
			close(leaderIn)
			<-gate // hold the flight open until every follower has joined
			return 42, nil
		})
	}
	wg.Add(1)
	go run(0)
	<-leaderIn // the leader's fn is running, so the key is in flight
	f.mu.Lock()
	c := f.m["k"]
	f.mu.Unlock()
	for i := 1; i < n; i++ {
		wg.Add(1)
		go run(i)
	}
	// Every follower must be parked on the leader's flight before the gate
	// opens; after it opens the flight completes and the key is retired.
	for c.waiters.Load() < n-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn executed %d times for one key, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("caller %d: got (%d, %v), want (42, nil)", i, results[i], errs[i])
		}
	}
}

func TestFlightDistinctKeysDoNotBlock(t *testing.T) {
	var f Flight[string]
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, err := f.Do(key, func() (string, error) { return key, nil })
			if err != nil || v != key {
				t.Errorf("key %s: got (%q, %v)", key, v, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestFlightErrorShared(t *testing.T) {
	var f Flight[int]
	sentinel := errors.New("optimize failed")
	gate := make(chan struct{})
	var started atomic.Bool

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Do("k", func() (int, error) {
				started.Store(true)
				<-gate
				return 0, sentinel
			})
		}(i)
	}
	for !started.Load() {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, sentinel) {
			t.Fatalf("caller %d: got %v, want shared sentinel", i, err)
		}
	}
}

func TestFlightForgetsCompletedCalls(t *testing.T) {
	var f Flight[int]
	var calls int
	for i := 0; i < 3; i++ {
		v, err := f.Do("k", func() (int, error) { calls++; return calls, nil })
		if err != nil {
			t.Fatal(err)
		}
		if v != i+1 {
			t.Fatalf("sequential call %d returned %d; completed flights must not memoize", i, v)
		}
	}
}

func TestFlightPanicPropagatesAsError(t *testing.T) {
	var f Flight[int]
	_, err := f.Do("k", func() (int, error) { panic("boom") })
	if err == nil {
		t.Fatal("panic swallowed")
	}
	// The flight must be cleaned up so the key is usable again.
	v, err := f.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("key unusable after panic: (%d, %v)", v, err)
	}
}
