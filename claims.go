package coldtall

import (
	"fmt"
	"io"

	"coldtall/internal/report"
)

// Claim is one verifiable statement from the paper's text, re-evaluated
// against this reproduction. Check returns the measured value (as a display
// string) and whether the claim's shape holds here.
type Claim struct {
	// ID locates the claim ("Fig1/a"); Text quotes or paraphrases it.
	ID   string
	Text string
	// Expected describes the paper's number or shape.
	Expected string
	check    func(*Study) (measured string, ok bool, err error)
}

// Claims returns the reproduction checklist: every quantitative statement
// of the paper's evaluation that this repository asserts (the same facts
// the test suite pins, exposed as a user-facing artifact).
func Claims() []Claim {
	rel := func(v float64) string { return report.Rel(v) }
	return []Claim{
		{
			ID: "Fig1/a", Text: "77 K operation cuts namd LLC power", Expected: "> 50x",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig1()
				if err != nil {
					return "", false, err
				}
				var at77 float64
				for _, r := range rows {
					if r.TemperatureK == 77 {
						at77 = r.RelDevicePower
					}
				}
				return fmt.Sprintf("%.1fx", 1/at77), 1/at77 > 50, nil
			},
		},
		{
			ID: "Fig1/b", Text: "net benefit survives 9.65x cooling", Expected: "> 50 % reduction",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig1()
				if err != nil {
					return "", false, err
				}
				for _, r := range rows {
					if r.TemperatureK == 77 {
						return fmt.Sprintf("%.0f %%", (1-r.RelTotalPower)*100), r.RelTotalPower < 0.5, nil
					}
				}
				return "", false, fmt.Errorf("missing 77 K row")
			},
		},
		{
			ID: "Fig3/a", Text: "cryogenic latency reduction", Expected: "~70 % lower",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig3()
				if err != nil {
					return "", false, err
				}
				for _, r := range rows {
					if r.Cell == "SRAM" && r.TemperatureK == 77 {
						red := (1 - r.RelReadLatency) * 100
						return fmt.Sprintf("%.0f %%", red), red > 60 && red < 88, nil
					}
				}
				return "", false, fmt.Errorf("missing row")
			},
		},
		{
			ID: "Fig3/b", Text: "77 K SRAM leakage collapse", Expected: "~1,000,000x",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig3()
				if err != nil {
					return "", false, err
				}
				var cold, hot float64
				for _, r := range rows {
					if r.Cell == "SRAM" {
						switch r.TemperatureK {
						case 77:
							cold = r.RelLeakagePower
						case 350:
							hot = r.RelLeakagePower
						}
					}
				}
				ratio := hot / cold
				return fmt.Sprintf("%.2gx", ratio), ratio > 1e5 && ratio < 1e7, nil
			},
		},
		{
			ID: "Fig3/c", Text: "3T-eDRAM retention stretch at 77 K", Expected: "> 10,000x",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig3()
				if err != nil {
					return "", false, err
				}
				var cold, hot float64
				for _, r := range rows {
					if r.Cell == "3T-eDRAM" {
						switch r.TemperatureK {
						case 77:
							cold = r.RetentionS
						case 350:
							hot = r.RetentionS
						}
					}
				}
				gain := cold / hot
				return fmt.Sprintf("%.2gx", gain), gain > 1e4, nil
			},
		},
		{
			ID: "Fig4/a", Text: "namd: cooling thwarts cryogenic eDRAM", Expected: "350 K eDRAM wins",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig4()
				if err != nil {
					return "", false, err
				}
				for _, r := range rows {
					if r.Benchmark == "namd" && r.Cell == "3T-eDRAM" {
						return fmt.Sprintf("%s vs %s cooled", rel(r.Rel350K), rel(r.Rel77KCooled)),
							r.Rel77KCooled > r.Rel350K, nil
					}
				}
				return "", false, fmt.Errorf("missing row")
			},
		},
		{
			ID: "Fig4/b", Text: "leela: cryogenic wins for both technologies", Expected: "both cooled points below 350 K",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig4()
				if err != nil {
					return "", false, err
				}
				ok, n := true, 0
				for _, r := range rows {
					if r.Benchmark == "leela" {
						n++
						ok = ok && r.Rel77KCooled < r.Rel350K
					}
				}
				return fmt.Sprintf("%d/2 technologies", n), ok && n == 2, nil
			},
		},
		{
			ID: "Fig5/a", Text: "77 K 3T-eDRAM lowest device power for all benchmarks", Expected: "23/23",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig5()
				if err != nil {
					return "", false, err
				}
				best := map[string]TrafficRow{}
				for _, r := range rows {
					if cur, seen := best[r.Benchmark]; !seen || r.RelDevicePower < cur.RelDevicePower {
						best[r.Benchmark] = r
					}
				}
				wins := 0
				for _, r := range best {
					if r.Label == "77K 3T-eDRAM" {
						wins++
					}
				}
				return fmt.Sprintf("%d/%d", wins, len(best)), wins == len(best), nil
			},
		},
		{
			ID: "Fig5/b", Text: "povray-band cooled win", Expected: "> 2,500x",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig5()
				if err != nil {
					return "", false, err
				}
				var cold, base float64
				for _, r := range rows {
					if r.Benchmark == "povray" {
						switch r.Label {
						case "77K 3T-eDRAM":
							cold = r.RelTotalPower
						case "350K SRAM":
							base = r.RelTotalPower
						}
					}
				}
				return fmt.Sprintf("%.0fx", base/cold), base/cold > 2500, nil
			},
		},
		{
			ID: "Fig5/c", Text: "cooled cryo exceeds baseline at ~1e8 reads/s", Expected: "lbm & mcf above 1",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig5()
				if err != nil {
					return "", false, err
				}
				above := 0
				for _, r := range rows {
					if r.Label == "77K 3T-eDRAM" && (r.Benchmark == "lbm" || r.Benchmark == "mcf") {
						baseRel := 0.0
						for _, b := range rows {
							if b.Label == "350K SRAM" && b.Benchmark == r.Benchmark {
								baseRel = b.RelTotalPower
							}
						}
						if r.RelTotalPower > baseRel {
							above++
						}
					}
				}
				return fmt.Sprintf("%d/2 benchmarks", above), above == 2, nil
			},
		},
		{
			ID: "Fig6/a", Text: "8-die SRAM area reduction", Expected: "> 80 %",
			check: fig6Check("8-die SRAM", func(r Fig6Row) (string, bool) {
				red := (1 - r.RelArea) * 100
				return fmt.Sprintf("%.0f %%", red), red > 80
			}),
		},
		{
			ID: "Fig6/b", Text: "PCM area gain from stacking", Expected: "~30 %",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig6()
				if err != nil {
					return "", false, err
				}
				var p1, p8 float64
				for _, r := range rows {
					switch r.Label {
					case "1-die PCM (optimistic)":
						p1 = r.RelArea
					case "8-die PCM (optimistic)":
						p8 = r.RelArea
					}
				}
				red := (1 - p8/p1) * 100
				return fmt.Sprintf("%.0f %%", red), red > 20 && red < 45, nil
			},
		},
		{
			ID: "Fig6/c", Text: "8-die PCM density vs 1-die SRAM", Expected: "> 10x",
			check: fig6Check("8-die PCM (optimistic)", func(r Fig6Row) (string, bool) {
				return fmt.Sprintf("%.1fx", 1/r.RelArea), 1/r.RelArea > 10
			}),
		},
		{
			ID: "Fig6/d", Text: "read-latency order: 8PCM < 4PCM < 2PCM < 8STT < 8RRAM", Expected: "exact order",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig6()
				if err != nil {
					return "", false, err
				}
				get := func(label string) float64 {
					for _, r := range rows {
						if r.Label == label {
							return r.RelReadLatency
						}
					}
					return -1
				}
				seq := []float64{
					get("8-die PCM (optimistic)"), get("4-die PCM (optimistic)"),
					get("2-die PCM (optimistic)"), get("8-die STT-RAM (optimistic)"),
					get("8-die RRAM (optimistic)"),
				}
				ok := true
				for i := 1; i < len(seq); i++ {
					ok = ok && seq[i-1] < seq[i]
				}
				return fmt.Sprintf("%.3f..%.3f", seq[0], seq[len(seq)-1]), ok, nil
			},
		},
		{
			ID: "Fig6/e", Text: "8-die STT lowest write latency", Expected: "global minimum",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig6()
				if err != nil {
					return "", false, err
				}
				var stt8 Fig6Row
				minOther := -1.0
				for _, r := range rows {
					if r.Label == "8-die STT-RAM (optimistic)" {
						stt8 = r
						continue
					}
					if minOther < 0 || r.RelWriteLatency < minOther {
						minOther = r.RelWriteLatency
					}
				}
				return fmt.Sprintf("%.3f vs next %.3f", stt8.RelWriteLatency, minOther),
					stt8.RelWriteLatency < minOther, nil
			},
		},
		{
			ID: "Fig7/a", Text: "8-die PCM lowest power above 1e7 reads/s", Expected: "wins mcf",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig7()
				if err != nil {
					return "", false, err
				}
				var best TrafficRow
				first := true
				for _, r := range rows {
					if r.Benchmark != "mcf" {
						continue
					}
					if first || r.RelTotalPower < best.RelTotalPower {
						best, first = r, false
					}
				}
				return best.Label, best.Label == "8-die PCM (optimistic)", nil
			},
		},
		{
			ID: "Fig7/b", Text: "8-die STT lowest latency except mcf", Expected: "22/23 + PCM on mcf",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Fig7()
				if err != nil {
					return "", false, err
				}
				best := map[string]TrafficRow{}
				for _, r := range rows {
					if cur, seen := best[r.Benchmark]; !seen || r.RelLatency < cur.RelLatency {
						best[r.Benchmark] = r
					}
				}
				sttWins, pcmOnMcf := 0, false
				for bench, r := range best {
					if bench == "mcf" {
						pcmOnMcf = r.Label == "8-die PCM (optimistic)"
						continue
					}
					if r.Label == "8-die STT-RAM (optimistic)" {
						sttWins++
					}
				}
				return fmt.Sprintf("STT %d/22, mcf->PCM %v", sttWins, pcmOnMcf),
					sttWins == 22 && pcmOnMcf, nil
			},
		},
		{
			ID: "TabII/a", Text: "power column winners", Expected: "77K 3T-eDRAM / 4-die PCM / 8-die PCM",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Table2()
				if err != nil {
					return "", false, err
				}
				got := ""
				ok := true
				want := map[string]string{
					"<5e4": "77K 3T-eDRAM", "5e4-8e6": "4-die PCM (optimistic)", ">8e6": "8-die PCM (optimistic)",
				}
				for _, r := range rows {
					if r.Objective != "power" {
						continue
					}
					if got != "" {
						got += " / "
					}
					got += r.Winner
					ok = ok && r.Winner == want[r.Band]
				}
				return got, ok, nil
			},
		},
		{
			ID: "TabII/b", Text: "power alternatives", Expected: "77K 3T-eDRAM (mid), 8-die SRAM (high)",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.Table2()
				if err != nil {
					return "", false, err
				}
				var mid, high string
				for _, r := range rows {
					if r.Objective == "power" {
						switch r.Band {
						case "5e4-8e6":
							mid = r.Alternative
						case ">8e6":
							high = r.Alternative
						}
					}
				}
				return mid + ", " + high, mid == "77K 3T-eDRAM" && high == "8-die SRAM", nil
			},
		},
		{
			ID: "SecVI", Text: "cold AND tall sweeps low-traffic power and latency", Expected: "8-die 77K 3T-eDRAM",
			check: func(s *Study) (string, bool, error) {
				sum, err := s.ColdAndTallVerdict("povray")
				if err != nil {
					return "", false, err
				}
				ok := sum.PowerWinner.Label == "8-die 3T-eDRAM @77K" &&
					sum.LatencyWinner.Label == "8-die 3T-eDRAM @77K"
				return sum.PowerWinner.Label, ok, nil
			},
		},
		{
			ID: "SecVA", Text: "air cooling equilibrates near the 350 K anchor", Expected: "330-365 K",
			check: func(s *Study) (string, bool, error) {
				rows, err := s.ThermalStudy()
				if err != nil {
					return "", false, err
				}
				for _, r := range rows {
					if r.Benchmark == "mcf" && r.Environment == "air" {
						return fmt.Sprintf("%.1f K", r.OperatingK),
							r.OperatingK > 330 && r.OperatingK < 365, nil
					}
				}
				return "", false, fmt.Errorf("missing row")
			},
		},
	}
}

// fig6Check builds a claim check over one Fig. 6 row.
func fig6Check(label string, f func(Fig6Row) (string, bool)) func(*Study) (string, bool, error) {
	return func(s *Study) (string, bool, error) {
		rows, err := s.Fig6()
		if err != nil {
			return "", false, err
		}
		for _, r := range rows {
			if r.Label == label {
				m, ok := f(r)
				return m, ok, nil
			}
		}
		return "", false, fmt.Errorf("missing row %q", label)
	}
}

// VerifyResult is one evaluated claim.
type VerifyResult struct {
	Claim
	Measured string
	Pass     bool
	Err      error
}

// Verify re-evaluates the whole checklist.
func (s *Study) Verify() []VerifyResult {
	claims := Claims()
	out := make([]VerifyResult, len(claims))
	for i, c := range claims {
		measured, ok, err := c.check(s)
		out[i] = VerifyResult{Claim: c, Measured: measured, Pass: ok && err == nil, Err: err}
	}
	return out
}

// RenderVerify prints the reproduction checklist.
func (s *Study) RenderVerify(w io.Writer) error {
	results := s.Verify()
	t := report.NewTable("Reproduction checklist: the paper's claims re-evaluated against this build",
		"claim", "statement", "paper", "measured", "status")
	pass := 0
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			if r.Err != nil {
				status = "ERROR: " + r.Err.Error()
			}
		} else {
			pass++
		}
		t.AddRow(r.ID, r.Text, r.Expected, r.Measured, status)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\n  %d/%d claims reproduced. Known deviations are documented in EXPERIMENTS.md.\n", pass, len(results))
	return err
}
