#!/bin/sh
# End-to-end gate for the multi-tenant surface, against a real
# `coldtall serve -tenants`: key auth (401 on a bad key, anonymous tier
# preserved), compute-budget exhaustion (429 with the X-Budget-* headers),
# the priority-inversion check (an interactive job submitted behind queued
# bulk work finishes first on a one-worker pool), SSE byte-identity
# (`jobs watch` stdout equals the synchronous artifact CSV), per-tenant
# metrics, a SIGHUP key rotation, and a clean SIGTERM drain with the
# tenancy stack loaded.
set -eu

BIN="${TMPDIR:-/tmp}/coldtall-tenantcheck"
ADDR="${COLDTALL_TENANTCHECK_ADDR:-127.0.0.1:18082}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"

go build -o "$BIN" ./cmd/coldtall

# Three tenants: alice (interactive, roomy budget), bob (bulk), and
# carol, whose two-evaluation budget exists to be exhausted.
cat > "$WORK/tenants.json" <<'EOF'
{
  "tenants": [
    {"name": "alice", "key": "alice-key", "weight": 2, "budget": 1000, "budget_window": "1h"},
    {"name": "bob", "key": "bob-key", "weight": 1},
    {"name": "carol", "key": "carol-key", "budget": 2, "budget_window": "1h"}
  ]
}
EOF

# One job at a time makes the dispatch order observable: whatever the
# scheduler picks next is the only thing running.
"$BIN" serve -addr "$ADDR" -tenants "$WORK/tenants.json" -job-concurrency 1 -store-dir "$WORK/store" &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "tenantcheck FAIL: /healthz never came up on $ADDR" >&2
    exit 1
  fi
  sleep 0.2
done

# --- key auth: bad key 401, good key 200, anonymous tier preserved ---
CODE="$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer wrong-key' "$BASE/v1/jobs")"
[ "$CODE" = "401" ] || { echo "tenantcheck FAIL: bad key answered $CODE, want 401" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer alice-key' "$BASE/v1/jobs")"
[ "$CODE" = "200" ] || { echo "tenantcheck FAIL: alice's key answered $CODE, want 200" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs")"
[ "$CODE" = "200" ] || { echo "tenantcheck FAIL: anonymous answered $CODE, want 200 (back-compat tier)" >&2; exit 1; }

# --- budget exhaustion: carol's third distinct evaluation is a 429
# carrying the budget headers and a Retry-After ---
for cell in SRAM PCM; do
  CODE="$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer carol-key' \
    -X POST -d "{\"cell\":\"$cell\"}" "$BASE/v1/characterize")"
  [ "$CODE" = "200" ] || { echo "tenantcheck FAIL: carol's $cell answered $CODE within budget" >&2; exit 1; }
done
curl -s -D "$WORK/hdr.txt" -o /dev/null -H 'Authorization: Bearer carol-key' \
  -X POST -d '{"cell":"STT-RAM"}' "$BASE/v1/characterize"
grep -q '^HTTP/[0-9.]* 429' "$WORK/hdr.txt" || {
  echo "tenantcheck FAIL: over-budget request was not a 429:" >&2
  cat "$WORK/hdr.txt" >&2
  exit 1
}
grep -qi '^x-budget-limit: 2' "$WORK/hdr.txt" || { echo "tenantcheck FAIL: 429 missing X-Budget-Limit: 2" >&2; exit 1; }
grep -qi '^x-budget-remaining: 0' "$WORK/hdr.txt" || { echo "tenantcheck FAIL: 429 missing X-Budget-Remaining: 0" >&2; exit 1; }
grep -qi '^retry-after:' "$WORK/hdr.txt" || { echo "tenantcheck FAIL: budget 429 missing Retry-After" >&2; exit 1; }
# The spent entry stays a free cache hit.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer carol-key' \
  -X POST -d '{"cell":"SRAM"}' "$BASE/v1/characterize")"
[ "$CODE" = "200" ] || { echo "tenantcheck FAIL: cache hit refused against an exhausted budget ($CODE)" >&2; exit 1; }

# --- priority inversion: on a one-worker pool, an interactive job
# submitted while bulk work is queued must finish before the queued bulk
# job starts ---
cat > "$WORK/bulk1.json" <<'EOF'
{"kind":"ingest","ingest":{"name":"tenantcheck-bulk-1","generator":{"pattern":"zipf","zipf_skew":1.2,"working_set_bytes":33554432,"accesses":8000000,"seed":1}}}
EOF
cat > "$WORK/bulk2.json" <<'EOF'
{"kind":"ingest","ingest":{"name":"tenantcheck-bulk-2","generator":{"pattern":"zipf","zipf_skew":1.2,"working_set_bytes":33554432,"accesses":8000000,"seed":2}}}
EOF
cat > "$WORK/interactive.json" <<'EOF'
{"kind":"characterize","points":[{"cell":"3T-eDRAM","temperature_k":77}]}
EOF
"$BIN" jobs -server "$BASE" -api-key bob-key submit "$WORK/bulk1.json" > "$WORK/bulk1.txt"
"$BIN" jobs -server "$BASE" -api-key bob-key submit "$WORK/bulk2.json" > "$WORK/bulk2.txt"
"$BIN" jobs -server "$BASE" -api-key alice-key submit "$WORK/interactive.json" > "$WORK/interactive.txt"
BULK2_ID="$(awk '{print $1; exit}' "$WORK/bulk2.txt")"
INTERACTIVE_ID="$(awk '{print $1; exit}' "$WORK/interactive.txt")"
"$BIN" jobs -server "$BASE" -api-key alice-key -poll 100ms wait "$INTERACTIVE_ID" > /dev/null
"$BIN" jobs -server "$BASE" -api-key bob-key status "$BULK2_ID" > "$WORK/bulk2-after.txt"
if grep -q ' done ' "$WORK/bulk2-after.txt"; then
  echo "tenantcheck FAIL: priority inversion — queued bulk job finished before the interactive job:" >&2
  cat "$WORK/bulk2-after.txt" >&2
  exit 1
fi
# Let the bulk queue drain so the SIGTERM at the end is a clean stop.
"$BIN" jobs -server "$BASE" -api-key bob-key -poll 200ms wait "$BULK2_ID" > /dev/null

# --- SSE byte-identity: `jobs watch` stdout is the synchronous CSV ---
"$BIN" jobs -server "$BASE" -api-key alice-key submit table1 > "$WORK/submit.txt"
JOB_ID="$(awk '{print $1; exit}' "$WORK/submit.txt")"
"$BIN" jobs -server "$BASE" -api-key alice-key watch "$JOB_ID" > "$WORK/watched.csv" 2> "$WORK/watch-progress.txt"
curl -fsS "$BASE/v1/artifacts/table1?format=csv" > "$WORK/sync.csv"
cmp "$WORK/watched.csv" "$WORK/sync.csv" || {
  echo "tenantcheck FAIL: jobs watch stdout diverged from the synchronous CSV" >&2
  exit 1
}
grep -q "$JOB_ID" "$WORK/watch-progress.txt" || {
  echo "tenantcheck FAIL: jobs watch printed no progress on stderr" >&2
  exit 1
}

# --- per-tenant metrics ---
METRICS="$(curl -fsS "$BASE/metrics")"
for series in 'coldtall_tenant_evals_spent_total{tenant="carol"}' \
  'coldtall_tenant_shed_total{tenant="carol"}' \
  'coldtall_tenant_admitted_total{tenant="carol"}'; do
  echo "$METRICS" | grep -qF "$series" || {
    echo "tenantcheck FAIL: /metrics missing $series" >&2
    exit 1
  }
done

# --- SIGHUP rotation: alice's key swaps in place, no restart ---
sed 's/alice-key/alice-key-2/' "$WORK/tenants.json" > "$WORK/tenants2.json"
mv "$WORK/tenants2.json" "$WORK/tenants.json"
kill -HUP "$PID"
i=0
until [ "$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer alice-key' "$BASE/v1/jobs")" = "401" ]; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "tenantcheck FAIL: rotated-out key still accepted after SIGHUP" >&2
    exit 1
  fi
  sleep 0.2
done
CODE="$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer alice-key-2' "$BASE/v1/jobs")"
[ "$CODE" = "200" ] || { echo "tenantcheck FAIL: rotated-in key answered $CODE, want 200" >&2; exit 1; }

# --- SIGTERM must drain and exit 0 with the tenancy stack loaded ---
kill -TERM "$PID"
wait "$PID" || { echo "tenantcheck FAIL: server did not drain cleanly" >&2; exit 1; }
trap - EXIT
rm -rf "$WORK"
echo "tenantcheck OK: auth, budgets, fair-share priority, SSE identity, metrics, SIGHUP rotation, clean drain"
