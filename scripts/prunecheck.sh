#!/bin/sh
# Differential proof that the pruned organization search is
# exhaustive-equivalent: replays the full cell x temperature x layer golden
# grid through both the exhaustive reference (optimizeExhaustive) and the
# production pruned path, asserting bit-identical Result selection, plus
# the admissibility property test behind the bound and the staircase/
# quadratic Pareto filter equivalence — all under the race detector, since
# the family ranking memo and the characterization pool run concurrently
# in production sweeps. Non-short mode, so the grid is not sampled.
set -eu

go test -race -count=1 -v \
  -run 'TestPrunedMatchesExhaustive|TestLowerBoundAdmissible|TestParetoFilterEquivalence|TestParetoDifferential|TestForceExhaustiveEnv' \
  ./internal/array/

echo "prunecheck OK: pruned search matches the exhaustive reference on the full grid"
