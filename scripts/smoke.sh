#!/bin/sh
# Smoke-test the HTTP DSE service end to end: build, boot `coldtall serve`,
# answer a characterization (cold, then from the response cache), scrape
# /metrics, and assert a clean SIGTERM drain (exit 0).
set -eu

BIN="${TMPDIR:-/tmp}/coldtall-smoke"
ADDR="${COLDTALL_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"

go build -o "$BIN" ./cmd/coldtall

"$BIN" serve -addr "$ADDR" &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (the binary binds before serving, so this is quick).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke FAIL: /healthz never came up on $ADDR" >&2
    exit 1
  fi
  sleep 0.2
done

curl -fsS "$BASE/healthz" | grep -q ok

# Cold characterization, then the identical request must be a cache hit.
curl -fsS -X POST -d '{"cell":"SRAM"}' "$BASE/v1/characterize" | grep -q read_latency_s
curl -fsS -D - -o /dev/null -X POST -d '{"cell":"SRAM"}' "$BASE/v1/characterize" |
  grep -qi '^x-cache: hit'

# The table endpoint agrees with the CLI export format.
curl -fsS "$BASE/v1/tables/1?format=csv" | head -1 | grep -q parameter

# Metrics expose the latency histogram and the cache counters.
METRICS="$(curl -fsS "$BASE/metrics")"
for series in coldtall_request_seconds_count coldtall_cache_hits_total coldtall_http_inflight; do
  echo "$METRICS" | grep -q "$series" || {
    echo "smoke FAIL: /metrics missing $series" >&2
    exit 1
  }
done

# SIGTERM must drain and exit 0.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "smoke OK: served, cached, scraped, drained cleanly"
