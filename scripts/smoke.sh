#!/bin/sh
# Smoke-test the HTTP DSE service end to end: build, boot `coldtall serve`
# with a persistent store, answer a characterization (cold, then from the
# response cache), run an async job through the CLI client and byte-diff
# its artifact against the synchronous endpoint, scrape /metrics, and
# assert a clean SIGTERM drain (exit 0).
set -eu

BIN="${TMPDIR:-/tmp}/coldtall-smoke"
ADDR="${COLDTALL_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"

go build -o "$BIN" ./cmd/coldtall

# -coordinator also exercises the workerless degrade: with no workers
# registered, distributed jobs must fall back to local compute while the
# cluster metrics surface stays scrapeable.
"$BIN" serve -addr "$ADDR" -coordinator -store-dir "$WORK/store" &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Wait for the listener (the binary binds before serving, so this is quick).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke FAIL: /healthz never came up on $ADDR" >&2
    exit 1
  fi
  sleep 0.2
done

curl -fsS "$BASE/healthz" | grep -q ok

# Cold characterization, then the identical request must be a cache hit.
curl -fsS -X POST -d '{"cell":"SRAM"}' "$BASE/v1/characterize" | grep -q read_latency_s
curl -fsS -D - -o /dev/null -X POST -d '{"cell":"SRAM"}' "$BASE/v1/characterize" |
  grep -qi '^x-cache: hit'

# The table endpoint agrees with the CLI export format.
curl -fsS "$BASE/v1/tables/1?format=csv" | head -1 | grep -q parameter

# Async job flow: submit the Table I artifact through the CLI client,
# poll it to completion, and require the payload to be byte-identical to
# the synchronous endpoint's CSV.
"$BIN" jobs -server "$BASE" submit table1 > "$WORK/submit.txt"
JOB_ID="$(awk '{print $1; exit}' "$WORK/submit.txt")"
case "$JOB_ID" in
  j*) ;;
  *) echo "smoke FAIL: jobs submit printed no job ID: $(cat "$WORK/submit.txt")" >&2; exit 1 ;;
esac
"$BIN" jobs -server "$BASE" -poll 100ms wait "$JOB_ID" > "$WORK/job.csv"
curl -fsS "$BASE/v1/artifacts/table1?format=csv" > "$WORK/sync.csv"
cmp "$WORK/job.csv" "$WORK/sync.csv" || {
  echo "smoke FAIL: async artifact diverged from the synchronous endpoint" >&2
  exit 1
}
"$BIN" jobs -server "$BASE" list | grep -q "$JOB_ID"

# Metrics expose the latency histogram, the cache counters, the
# persistence/job series the store wiring adds, and the cluster
# lease/worker series the coordinator mirrors at scrape time.
METRICS="$(curl -fsS "$BASE/metrics")"
for series in coldtall_request_seconds_count coldtall_cache_hits_total coldtall_http_inflight \
  coldtall_jobs_running coldtall_store_entries coldtall_cache_evictions_total \
  coldtall_cluster_workers coldtall_cluster_leases_pending coldtall_cluster_leases_requeued_total \
  coldtall_cluster_points_total; do
  echo "$METRICS" | grep -q "$series" || {
    echo "smoke FAIL: /metrics missing $series" >&2
    exit 1
  }
done

# SIGTERM must drain and exit 0.
kill -TERM "$PID"
wait "$PID"
trap - EXIT
rm -rf "$WORK"
echo "smoke OK: served, cached, ran a job, scraped, drained cleanly"
