#!/bin/sh
# Distributed-execution drift check: boot `coldtall serve -coordinator`
# plus two stateless workers, run the Table II artifact job through the
# cluster, and byte-diff the payload against a plain single-process
# server running the identical job. Then repeat with a worker SIGKILLed
# mid-lease: the lease must expire and requeue, the surviving worker must
# finish the sweep, and the bytes must still match.
set -eu

BIN="${TMPDIR:-/tmp}/coldtall-clustercheck"
COORD_ADDR="${COLDTALL_CLUSTER_ADDR:-127.0.0.1:18090}"
LOCAL_ADDR="${COLDTALL_CLUSTER_LOCAL_ADDR:-127.0.0.1:18091}"
COORD="http://$COORD_ADDR"
LOCAL="http://$LOCAL_ADDR"
TOKEN="clustercheck-secret"
WORK="$(mktemp -d)"
PIDS=""

cleanup() {
  for pid in $PIDS; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/coldtall

wait_http() {
  i=0
  until curl -fsS "$1" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
      echo "clustercheck FAIL: $1 never came up" >&2
      exit 1
    fi
    sleep 0.2
  done
}

# status_field NAME BASE: pull one integer counter out of
# GET /v1/cluster/status.
status_field() {
  curl -fsS -H "X-Coldtall-Worker-Token: $TOKEN" "$2/v1/cluster/status" |
    grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

wait_status_positive() { # wait_status_positive FIELD BASE WHAT
  i=0
  while :; do
    v="$(status_field "$1" "$2" 2>/dev/null || true)"
    if [ -n "$v" ] && [ "$v" != "0" ]; then
      return 0
    fi
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
      echo "clustercheck FAIL: $3 (status field $1 stayed ${v:-unreadable})" >&2
      exit 1
    fi
    sleep 0.1
  done
}

run_job() { # run_job BASE OUTFILE
  "$BIN" jobs -server "$1" submit table2 > "$WORK/submit.txt"
  JOB_ID="$(awk '{print $1; exit}' "$WORK/submit.txt")"
  case "$JOB_ID" in
    j*) ;;
    *) echo "clustercheck FAIL: jobs submit printed no job ID: $(cat "$WORK/submit.txt")" >&2; exit 1 ;;
  esac
  "$BIN" jobs -server "$1" -poll 100ms wait "$JOB_ID" > "$2"
}

# Reference: the identical Table II job on a plain single-process server.
"$BIN" serve -addr "$LOCAL_ADDR" -store-dir "$WORK/store-local" >"$WORK/local.log" 2>&1 &
PIDS="$PIDS $!"
wait_http "$LOCAL/healthz"
run_job "$LOCAL" "$WORK/local.csv"

# --- Phase 1: coordinator + two workers, clean run -----------------------

"$BIN" serve -addr "$COORD_ADDR" -coordinator -worker-token "$TOKEN" \
  -store-dir "$WORK/store-dist" >"$WORK/coord1.log" 2>&1 &
COORD_PID=$!
PIDS="$PIDS $COORD_PID"
wait_http "$COORD/healthz"

# The cluster surface must reject unauthenticated callers.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{}' "$COORD/v1/cluster/lease")"
if [ "$CODE" != "401" ]; then
  echo "clustercheck FAIL: unauthenticated cluster request answered $CODE, want 401" >&2
  exit 1
fi

"$BIN" worker -server "$COORD" -worker-token "$TOKEN" -name a -poll 20ms >"$WORK/worker-a.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN" worker -server "$COORD" -worker-token "$TOKEN" -name b -poll 20ms >"$WORK/worker-b.log" 2>&1 &
PIDS="$PIDS $!"
wait_status_positive workers_registered_total "$COORD" "workers never registered"

run_job "$COORD" "$WORK/dist.csv"
cmp "$WORK/dist.csv" "$WORK/local.csv" || {
  echo "clustercheck FAIL: distributed Table II payload diverged from the single-process run" >&2
  exit 1
}
# The cluster, not the local fallback, must have computed the points.
UNITS="$(status_field units_done_total "$COORD")"
if [ -z "$UNITS" ] || [ "$UNITS" = "0" ]; then
  echo "clustercheck FAIL: coordinator reports 0 units done; the job fell back to local compute" >&2
  exit 1
fi

for pid in $PIDS; do kill -9 "$pid" 2>/dev/null || true; done
PIDS=""

# --- Phase 2: SIGKILL a worker mid-lease, let it requeue -----------------

"$BIN" serve -addr "$COORD_ADDR" -coordinator -worker-token "$TOKEN" -lease-ttl 2s \
  -store-dir "$WORK/store-kill" >"$WORK/coord2.log" 2>&1 &
PIDS="$PIDS $!"
wait_http "$COORD/healthz"

# The doomed worker throttles so hard it never finishes a unit: killing
# it is guaranteed to interrupt mid-range.
"$BIN" worker -server "$COORD" -worker-token "$TOKEN" -name doomed -poll 20ms -throttle 2m \
  >"$WORK/worker-doomed.log" 2>&1 &
DOOMED_PID=$!
PIDS="$PIDS $DOOMED_PID"
wait_status_positive workers_registered_total "$COORD" "doomed worker never registered"

run_job "$COORD" "$WORK/dist-kill.csv" &
JOB_WAIT_PID=$!
PIDS="$PIDS $JOB_WAIT_PID"

wait_status_positive leases_granted_total "$COORD" "doomed worker never took a lease"
kill -9 "$DOOMED_PID"
"$BIN" worker -server "$COORD" -worker-token "$TOKEN" -name survivor -poll 20ms \
  >"$WORK/worker-survivor.log" 2>&1 &
PIDS="$PIDS $!"

wait "$JOB_WAIT_PID" || {
  echo "clustercheck FAIL: Table II job did not complete after the worker kill" >&2
  exit 1
}
cmp "$WORK/dist-kill.csv" "$WORK/local.csv" || {
  echo "clustercheck FAIL: post-kill Table II payload diverged from the single-process run" >&2
  exit 1
}
REQUEUED="$(status_field leases_requeued_total "$COORD")"
if [ -z "$REQUEUED" ] || [ "$REQUEUED" = "0" ]; then
  echo "clustercheck FAIL: no lease requeued after SIGKILLing a mid-range worker" >&2
  exit 1
fi

# The server's /metrics mirrors the lease lifecycle counters.
METRICS="$(curl -fsS "$COORD/metrics")"
for series in coldtall_cluster_workers coldtall_cluster_leases_granted_total \
  coldtall_cluster_leases_requeued_total coldtall_cluster_points_total; do
  echo "$METRICS" | grep -q "$series" || {
    echo "clustercheck FAIL: /metrics missing $series" >&2
    exit 1
  }
done

echo "clustercheck OK: distributed Table II byte-identical to single-process, including after a mid-lease SIGKILL ($REQUEUED lease(s) requeued)"
