#!/bin/sh
# End-to-end gate for the technology-backend extension: the three new
# registry artifacts (gaincell, deepcryo, freqsweep) must serve over HTTP
# byte-identically to the CLI's CSV rendering, and the new sweep axes must
# characterize through the CLI — including a 4 K deep-cryogenic gain-cell
# point and a non-default core clock. The CLI and the server both render
# from coldtall.Artifacts(), so a divergence means one surface stopped
# going through the registry (or the study lost determinism).
set -eu

BIN="${TMPDIR:-/tmp}/coldtall-techcheck"
ADDR="${COLDTALL_TECHCHECK_ADDR:-127.0.0.1:18084}"
BASE="http://$ADDR"
ARTIFACTS="gaincell deepcryo freqsweep"

go build -o "$BIN" ./cmd/coldtall

WORK="$(mktemp -d)"
cleanup() {
  kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}

# CLI side first (also warms nothing the server can reuse — the server is a
# separate process, so the byte comparison is a real determinism check).
for name in $ARTIFACTS; do
  "$BIN" artifacts -format csv "$name" > "$WORK/cli-$name.csv"
  [ -s "$WORK/cli-$name.csv" ] || { echo "techcheck FAIL: CLI produced empty $name.csv" >&2; exit 1; }
done

"$BIN" serve -addr "$ADDR" &
PID=$!
trap cleanup EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "techcheck FAIL: /healthz never came up on $ADDR" >&2
    exit 1
  fi
  sleep 0.2
done

for name in $ARTIFACTS; do
  curl -fsS "$BASE/v1/artifacts/$name?format=csv" > "$WORK/http-$name.csv"
  cmp "$WORK/cli-$name.csv" "$WORK/http-$name.csv" || {
    echo "techcheck FAIL: $name.csv served over HTTP differs from the CLI bytes" >&2
    exit 1
  }
done

# Schema spot checks: each artifact opens with its registered header.
head -1 "$WORK/cli-gaincell.csv" | grep -q '^design_point,cell,corner,dies,temperature_k,retention_s,' ||
  { echo "techcheck FAIL: gaincell.csv header drifted" >&2; exit 1; }
head -1 "$WORK/cli-deepcryo.csv" | grep -q '^cell,temperature_k,cooler_w_per_w,' ||
  { echo "techcheck FAIL: deepcryo.csv header drifted" >&2; exit 1; }
head -1 "$WORK/cli-freqsweep.csv" | grep -q '^design_point,cell,temperature_k,frequency_hz,rel_ipc,rel_perf,' ||
  { echo "techcheck FAIL: freqsweep.csv header drifted" >&2; exit 1; }

# The deep-cryo sweep must reach 4 K with a Carnot-inflated cooler ratio
# (three-digit W/W at least; the flat 77 K figure is 9.65).
awk -F, 'NR > 1 && $2 == 4 && $3 + 0 > 100 { found = 1 } END { exit !found }' "$WORK/cli-deepcryo.csv" ||
  { echo "techcheck FAIL: deepcryo.csv has no 4 K row with a Carnot-scaled cooler overhead" >&2; exit 1; }

# New sweep axes through the CLI: a 4 K monolithic gain-cell point and a
# cryo-boosted 10 GHz point must both characterize end to end.
"$BIN" sweep -cell OS-GC -corner optimistic -style monolithic -dies 4 -temp 4 > "$WORK/sweep-gc.txt"
grep -q 'osgc-optimistic @4K' "$WORK/sweep-gc.txt" ||
  { echo "techcheck FAIL: 4 K gain-cell sweep did not characterize" >&2; exit 1; }
"$BIN" sweep -cell SRAM -temp 77 -freq 10e9 > "$WORK/sweep-freq.txt"
grep -q '@10GHz' "$WORK/sweep-freq.txt" ||
  { echo "techcheck FAIL: 10 GHz sweep did not carry the frequency axis" >&2; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "techcheck FAIL: server did not drain cleanly" >&2; exit 1; }
trap - EXIT
rm -rf "$WORK"

echo "techcheck OK: gaincell/deepcryo/freqsweep CLI and HTTP bytes agree; 4K and 10GHz points characterize"
