#!/bin/sh
# Drift check between the two faces of the artifact registry: the CLI's
# `coldtall artifacts list` catalog and the served GET /v1/artifacts must
# enumerate exactly the same artifact names in the same (paper) order.
# Both derive from coldtall.Artifacts(), so a mismatch means one surface
# stopped iterating the registry — the regression this script exists to
# catch. The OpenAPI document gets the same treatment: `coldtall openapi`
# and the served /v1/openapi.json must be byte-identical.
set -eu

BIN="${TMPDIR:-/tmp}/coldtall-artifactcheck"
ADDR="${COLDTALL_ARTIFACTCHECK_ADDR:-127.0.0.1:18081}"
BASE="http://$ADDR"

go build -o "$BIN" ./cmd/coldtall

# CLI side: the first column of the catalog rows (skip the title line, the
# header row and the separator rule).
CLI_NAMES="$("$BIN" artifacts list | awk 'NR > 3 && NF > 0 { print $1 }')"
[ -n "$CLI_NAMES" ] || { echo "artifactcheck FAIL: CLI catalog is empty" >&2; exit 1; }

"$BIN" serve -addr "$ADDR" &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "artifactcheck FAIL: /healthz never came up on $ADDR" >&2
    exit 1
  fi
  sleep 0.2
done

# Served side: artifact-level name fields, in catalog order. Column schema
# objects also carry "name", but only artifact objects pair it with "file",
# so match on the pair (no jq on minimal runners).
HTTP_NAMES="$(curl -fsS "$BASE/v1/artifacts" | tr '{' '\n' |
  sed -n 's/.*"name":"\([^"]*\)","file".*/\1/p')"

if [ "$CLI_NAMES" != "$HTTP_NAMES" ]; then
  echo "artifactcheck FAIL: CLI and served artifact catalogs differ" >&2
  echo "--- coldtall artifacts list:" >&2
  echo "$CLI_NAMES" >&2
  echo "--- GET /v1/artifacts:" >&2
  echo "$HTTP_NAMES" >&2
  exit 1
fi

# One artifact end to end: the served CSV must open with its schema header.
curl -fsS "$BASE/v1/artifacts/table1?format=csv" | head -1 | grep -q '^parameter,value$'

# OpenAPI drift: the offline `coldtall openapi` document and the served
# /v1/openapi.json must be byte-identical (both render from the same
# route table + registry), and every artifact name must appear in it.
WORK="$(mktemp -d)"
"$BIN" openapi > "$WORK/cli-openapi.json"
curl -fsS "$BASE/v1/openapi.json" > "$WORK/served-openapi.json"
cmp "$WORK/cli-openapi.json" "$WORK/served-openapi.json" || {
  echo "artifactcheck FAIL: CLI openapi output diverged from the served /v1/openapi.json" >&2
  rm -rf "$WORK"
  exit 1
}
for name in $CLI_NAMES; do
  grep -q "\"$name\"" "$WORK/cli-openapi.json" || {
    echo "artifactcheck FAIL: artifact $name missing from the OpenAPI document" >&2
    rm -rf "$WORK"
    exit 1
  }
done
rm -rf "$WORK"

kill -TERM "$PID"
wait "$PID" || { echo "artifactcheck FAIL: server did not drain cleanly" >&2; exit 1; }
trap - EXIT

COUNT="$(echo "$CLI_NAMES" | wc -l | tr -d ' ')"
echo "artifactcheck OK: $COUNT artifacts, CLI and HTTP catalogs agree"
