#!/bin/sh
# End-to-end invariants of the trace toolchain through the built binaries
# (the unit tests pin the same properties in-process; this script proves
# the shipped tracegen/llcsim agree over real pipes and files):
#
#   1. tracegen's text and binary outputs describe the same accesses:
#      llcsim renders identical statistics from either.
#   2. llcsim -dump converts text to the canonical .ctrace encoding, and
#      tracegen -format binary emits that same canonical form.
#   3. Sharded replay is bit-identical to serial replay on both formats.
set -eu

DIR="${TMPDIR:-/tmp}/coldtall-tracecheck.$$"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/tracegen" ./cmd/tracegen
go build -o "$DIR/llcsim" ./cmd/llcsim

GEN="-bench mcf -n 200000 -seed 42"

# 1. Same accesses through both formats => same simulated statistics.
"$DIR/tracegen" $GEN > "$DIR/mcf.trace"
"$DIR/tracegen" $GEN -format binary > "$DIR/mcf.ctrace"
"$DIR/llcsim" -bench mcf -trace "$DIR/mcf.trace" > "$DIR/out.text"
"$DIR/llcsim" -bench mcf -trace "$DIR/mcf.ctrace" > "$DIR/out.binary"
cmp -s "$DIR/out.text" "$DIR/out.binary" || {
  echo "tracecheck FAIL: text and binary traces simulate differently" >&2
  diff "$DIR/out.text" "$DIR/out.binary" >&2 || true
  exit 1
}

# 2. llcsim -dump on the text trace reproduces tracegen's canonical binary.
"$DIR/llcsim" -bench mcf -trace "$DIR/mcf.trace" -dump "$DIR/dumped.ctrace" > "$DIR/out.dump"
cmp -s "$DIR/mcf.ctrace" "$DIR/dumped.ctrace" || {
  echo "tracecheck FAIL: -dump output is not the canonical .ctrace encoding" >&2
  exit 1
}
cmp -s "$DIR/out.text" "$DIR/out.dump" || {
  echo "tracecheck FAIL: conversion mode simulated differently" >&2
  exit 1
}

# 3. Sharded replay merges to bit-identical statistics.
"$DIR/llcsim" -bench mcf -trace "$DIR/mcf.ctrace" -shards 16 -workers 4 > "$DIR/out.sharded"
cmp -s "$DIR/out.binary" "$DIR/out.sharded" || {
  echo "tracecheck FAIL: sharded replay diverges from serial" >&2
  diff "$DIR/out.binary" "$DIR/out.sharded" >&2 || true
  exit 1
}

# The binary form should also be materially smaller than the text form.
TEXT_SIZE=$(wc -c < "$DIR/mcf.trace")
BIN_SIZE=$(wc -c < "$DIR/mcf.ctrace")
if [ "$BIN_SIZE" -ge "$TEXT_SIZE" ]; then
  echo "tracecheck FAIL: .ctrace ($BIN_SIZE B) not smaller than text ($TEXT_SIZE B)" >&2
  exit 1
fi

echo "tracecheck OK: text/binary/sharded agree; .ctrace $BIN_SIZE B vs text $TEXT_SIZE B"
