#!/bin/sh
# End-to-end gate for the workload-intelligence subsystem, against a real
# store-backed `coldtall serve`:
#
#   1. Dedup round-trip: the same generator spec ingested under two names
#      registers the second as an alias of the first, the per-workload
#      artifact bytes are identical for both names (one shared cache
#      entry — zero extra sweep work), and the dedup counter ticks.
#   2. Distillation: a profile-derived trace distills back to a compact
#      generator spec whose regenerated traffic matches within the pinned
#      tolerance, replacing the stored trace bytes.
#   3. Resumable upload: a chunked trace upload interrupted halfway
#      resumes from the server-reported offset and ingests to the exact
#      content address (sha256) of the local payload.
set -eu

BIN="${TMPDIR:-/tmp}/coldtall-wlcheck"
TRACEGEN="${TMPDIR:-/tmp}/coldtall-wlcheck-tracegen"
ADDR="${COLDTALL_WLCHECK_ADDR:-127.0.0.1:18085}"
BASE="http://$ADDR"

go build -o "$BIN" ./cmd/coldtall
go build -o "$TRACEGEN" ./cmd/tracegen

WORK="$(mktemp -d)"
cleanup() {
  kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}

"$BIN" serve -addr "$ADDR" -store-dir "$WORK/store" &
PID=$!
trap cleanup EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "wlcheck FAIL: /healthz never came up on $ADDR" >&2
    exit 1
  fi
  sleep 0.2
done

# --- 1. Dedup round-trip -------------------------------------------------
GEN='{"pattern": "stream", "working_set_bytes": 67108864, "write_frac": 0.3, "accesses": 50000, "seed": 5}'
printf '{"name": "wlorig", "generator": %s}' "$GEN" > "$WORK/orig.json"
printf '{"name": "wlcopy", "generator": %s}' "$GEN" > "$WORK/copy.json"
"$BIN" workloads -server "$BASE" -poll 50ms add "$WORK/orig.json" > /dev/null
"$BIN" workloads -server "$BASE" -poll 50ms add "$WORK/copy.json" > /dev/null

curl -fsS "$BASE/v1/workloads/wlcopy" > "$WORK/copy-record.json"
grep -q '"kind":"alias"' "$WORK/copy-record.json" &&
  grep -q '"alias_of":"wlorig"' "$WORK/copy-record.json" || {
  echo "wlcheck FAIL: identical re-upload did not register as an alias of wlorig" >&2
  cat "$WORK/copy-record.json" >&2
  exit 1
}

curl -fsS "$BASE/v1/workloads/wlorig/artifacts/fig5?format=csv" > "$WORK/orig-fig5.csv"
curl -fsS "$BASE/v1/workloads/wlcopy/artifacts/fig5?format=csv" > "$WORK/copy-fig5.csv"
cmp "$WORK/orig-fig5.csv" "$WORK/copy-fig5.csv" || {
  echo "wlcheck FAIL: alias and canonical render different fig5 bytes" >&2
  exit 1
}

curl -fsS "$BASE/metrics" | grep -q '^coldtall_ingest_dedup_total 1$' || {
  echo "wlcheck FAIL: coldtall_ingest_dedup_total did not count the dedup" >&2
  exit 1
}

"$BIN" workloads -server "$BASE" similar wlorig > "$WORK/similar.txt"
"$BIN" workloads -server "$BASE" sig wlcopy | grep -q 'canonical = wlorig' || {
  echo "wlcheck FAIL: alias signature did not resolve to the canonical workload" >&2
  exit 1
}

# --- 2. Distillation ------------------------------------------------------
printf '{"name": "wlprof", "generator": {"profile": "mcf", "accesses": 65536, "seed": 1}}' > "$WORK/prof.json"
"$BIN" workloads -server "$BASE" -poll 50ms add "$WORK/prof.json" > /dev/null
"$BIN" workloads -server "$BASE" -poll 50ms distill wlprof > "$WORK/distill.txt"
grep -q 'accepted  = true' "$WORK/distill.txt" || {
  echo "wlcheck FAIL: distillation did not recover the traffic within tolerance" >&2
  cat "$WORK/distill.txt" >&2
  exit 1
}
grep -q 'deleted true' "$WORK/distill.txt" || {
  echo "wlcheck FAIL: accepted distillation did not replace the stored trace" >&2
  cat "$WORK/distill.txt" >&2
  exit 1
}

# --- 3. Chunked upload, interrupted and resumed ---------------------------
"$TRACEGEN" -bench mcf -n 100000 -seed 9 -format binary > "$WORK/up.ctrace"
SIZE=$(wc -c < "$WORK/up.ctrace")
HALF=$((SIZE / 2))
dd if="$WORK/up.ctrace" of="$WORK/chunk1" bs="$HALF" count=1 2>/dev/null
dd if="$WORK/up.ctrace" of="$WORK/chunk2" bs="$HALF" skip=1 2>/dev/null

# First half lands; the "crashed" client then reads the resume offset back
# instead of trusting any local state.
curl -fsS -X POST --data-binary "@$WORK/chunk1" "$BASE/v1/workloads/wlchunk/chunks?offset=0" > /dev/null
RESUME=$(curl -fsS "$BASE/v1/workloads/wlchunk/chunks" | sed 's/.*"offset":\([0-9]*\).*/\1/')
[ "$RESUME" = "$HALF" ] || {
  echo "wlcheck FAIL: resume offset $RESUME after interruption, want $HALF" >&2
  exit 1
}

# A stale retransmit of the first chunk must be refused with the offset.
CODE=$(curl -s -o "$WORK/stale.json" -w '%{http_code}' -X POST --data-binary "@$WORK/chunk1" "$BASE/v1/workloads/wlchunk/chunks?offset=0")
[ "$CODE" = "409" ] || {
  echo "wlcheck FAIL: stale chunk retransmit answered $CODE, want 409" >&2
  exit 1
}

# Resume with the rest and complete; the ack is the ingest job status.
curl -fsS -X POST --data-binary "@$WORK/chunk2" \
  "$BASE/v1/workloads/wlchunk/chunks?offset=$RESUME&complete=1" > "$WORK/complete.json"
JOB_ID=$(sed 's/.*"id":"\([^"]*\)".*/\1/' "$WORK/complete.json")
"$BIN" jobs -server "$BASE" -poll 50ms wait "$JOB_ID" > /dev/null

WANT_SHA=$(sha256sum "$WORK/up.ctrace" | cut -d' ' -f1)
curl -fsS "$BASE/v1/workloads/wlchunk" > "$WORK/chunk-record.json"
grep -q "\"trace_sha256\":\"$WANT_SHA\"" "$WORK/chunk-record.json" || {
  echo "wlcheck FAIL: resumed upload ingested a different trace content address" >&2
  cat "$WORK/chunk-record.json" >&2
  exit 1
}

# --- teardown: rm in dependency order, then a clean drain -----------------
"$BIN" workloads -server "$BASE" rm wlcopy > /dev/null
"$BIN" workloads -server "$BASE" rm wlorig > /dev/null

kill -TERM "$PID"
wait "$PID" || { echo "wlcheck FAIL: server did not drain cleanly" >&2; exit 1; }
trap - EXIT
rm -rf "$WORK"

echo "wlcheck OK: dedup aliased with shared artifact bytes; distill accepted and compacted; interrupted upload resumed to the exact content address"
