package coldtall

import (
	"coldtall/internal/cryo"
	"coldtall/internal/explorer"
	"coldtall/internal/tech"
)

// ArtifactPoints returns the design points an artifact's render path
// characterizes, so the cluster layer can fan the expensive array
// optimizations out to workers before the (cheap) render runs locally.
//
// The enumeration is best-effort and affects scheduling only, never
// results: a point listed here is pre-characterized remotely and seeded
// into the explorer cache; a point the render needs but the list misses is
// simply characterized locally, and results are identical either way
// (array.Optimize is deterministic — the pruned/exhaustive differential
// pins it). Artifacts without an enumerable grid return nil and render
// entirely locally.
func ArtifactPoints(name string) []explorer.DesignPoint {
	var pts []explorer.DesignPoint
	switch name {
	case "fig1":
		for _, t := range cryo.EffectiveTemperatures() {
			pts = append(pts, explorer.SRAMAt(t))
		}
	case "fig3", "fig4":
		pts = explorer.CryoSweep(cryo.EffectiveTemperatures())
	case "fig5":
		pts = fig5Points()
	case "fig6", "fig7":
		envm, err := explorer.ENVMSweep()
		if err != nil {
			return nil
		}
		pts = envm
	case "table2":
		cands, err := explorer.TableIICandidates()
		if err != nil {
			return nil
		}
		pts = cands
	case "cooling":
		pts = []explorer.DesignPoint{explorer.EDRAMAt(tech.TempCryo77)}
	default:
		return nil
	}
	// Every artifact normalizes against (or slowdown-checks through) the
	// 350 K SRAM baseline; include it so a cold cluster run never falls
	// back to a local optimizer call for the denominator.
	pts = append(pts, explorer.Baseline())
	seen := make(map[string]bool, len(pts))
	out := pts[:0]
	for _, p := range pts {
		if k := p.Key(); !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}
