package coldtall

import (
	"fmt"
	"io"

	"coldtall/internal/cell"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/stack"
	"coldtall/internal/tech"
)

// The paper excludes two technologies from its headline comparison and
// justifies each exclusion with one sentence; this file regenerates the
// evidence.
//
//   - 1T1C-eDRAM: "prior work has shown that it is generally slower and
//     exhibits higher dynamic energy than SRAM and 3T-eDRAM" (Sec. III-B).
//   - SOT-RAM "improves significantly on the write performance of STT-RAM
//     at the expense of increased read latency" (Sec. II-B) — mentioned but
//     not carried into the LLC study.

// ExclusionRow compares one excluded technology against its reference.
type ExclusionRow struct {
	// Label names the design point.
	Label string
	// Relative array metrics vs 1-die 350 K SRAM.
	RelReadLatency, RelWriteLatency float64
	RelReadEnergy, RelWriteEnergy   float64
	RelLeakage, RelArea             float64
	// RelRefresh is refresh power over the baseline's leakage (the cost
	// SRAM never pays).
	RelRefresh float64
}

// ExclusionStudy characterizes 1T1C-eDRAM, 3T-eDRAM, SOT-RAM and STT-RAM at
// 350 K against the SRAM baseline, documenting why the paper's headline
// comparison drops 1T1C (slower, higher dynamic energy) and why SOT is a
// write-latency specialist.
func (s *Study) ExclusionStudy() ([]ExclusionRow, error) {
	base, err := s.exp.Characterize(explorer.Baseline())
	if err != nil {
		return nil, err
	}
	points := []explorer.DesignPoint{
		explorer.Baseline(),
		explorer.EDRAMAt(tech.TempHot350),
		edram1T1CAt350(),
	}
	sot, err := explorer.Stacked(cell.SOTRAM, cell.Optimistic, 1)
	if err != nil {
		return nil, err
	}
	stt, err := explorer.Stacked(cell.STTRAM, cell.Optimistic, 1)
	if err != nil {
		return nil, err
	}
	points = append(points, stt, sot)

	var rows []ExclusionRow
	for _, p := range points {
		r, err := s.exp.Characterize(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExclusionRow{
			Label:           p.Label,
			RelReadLatency:  r.ReadLatency / base.ReadLatency,
			RelWriteLatency: r.WriteLatency / base.WriteLatency,
			RelReadEnergy:   r.ReadEnergy / base.ReadEnergy,
			RelWriteEnergy:  r.WriteEnergy / base.WriteEnergy,
			RelLeakage:      r.LeakagePower / base.LeakagePower,
			RelArea:         r.FootprintM2 / base.FootprintM2,
			RelRefresh:      r.RefreshPower / base.LeakagePower,
		})
	}
	return rows, nil
}

// edram1T1CAt350 builds the 1T1C design point (not part of the standard
// sweeps).
func edram1T1CAt350() explorer.DesignPoint {
	return explorer.DesignPoint{
		Label:       "350K 1T1C-eDRAM",
		Cell:        cell.NewEDRAM1T1C(),
		Temperature: tech.TempHot350,
		Dies:        1,
		Style:       stack.TSVStack,
	}
}

// RenderExclusions prints the exclusion study.
func (s *Study) RenderExclusions(w io.Writer) error {
	rows, err := s.ExclusionStudy()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Excluded technologies at 350K (relative to 1-die SRAM): why 1T1C-eDRAM and SOT-RAM sit out",
		"design point", "rd lat", "wr lat", "rd E", "wr E", "leakage", "refresh", "area")
	for _, r := range rows {
		t.AddRow(r.Label,
			report.Rel(r.RelReadLatency), report.Rel(r.RelWriteLatency),
			report.Rel(r.RelReadEnergy), report.Rel(r.RelWriteEnergy),
			report.Rel(r.RelLeakage), report.Rel(r.RelRefresh), report.Rel(r.RelArea))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "  1T1C-eDRAM reads destructively: every read pays a full-swing row restore,\n  so it is slower than SRAM and 3T-eDRAM, its dynamic energy sits well above\n  the gain cell's, and it refreshes more than twice as often; SOT-RAM beats\n  STT on writes but pays on reads — both exclusions as the paper states.")
	return err
}
