// Quickstart: characterize one LLC design point, evaluate it under a
// benchmark's traffic, and compare it to the paper's 350 K SRAM baseline —
// the minimal end-to-end use of the coldtall API.
package main

import (
	"fmt"
	"log"

	"coldtall"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

func main() {
	study := coldtall.NewStudy()
	exp := study.Explorer()

	// The design point under evaluation: the paper's favourite cryogenic
	// option, 3T-eDRAM at 77 K.
	point := explorer.EDRAMAt(tech.TempCryo77)

	// Array-level characterization (the Destiny/CryoMEM layer).
	arr, err := exp.Characterize(point)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s array: read %s, write %s, leakage %s, footprint %s\n",
		point.Label,
		report.Eng(arr.ReadLatency, "s"), report.Eng(arr.WriteLatency, "s"),
		report.Eng(arr.LeakagePower, "W"), report.Area(arr.FootprintM2))

	// Application-level evaluation under leela's LLC traffic (the
	// NVMExplorer layer), including the 9.65x cryocooler.
	tr, err := workload.StaticTrafficFor("leela")
	if err != nil {
		log.Fatal(err)
	}
	ev, err := exp.Evaluate(point, tr)
	if err != nil {
		log.Fatal(err)
	}
	base, err := exp.BaselineEvaluation()
	if err != nil {
		log.Fatal(err)
	}
	rel := explorer.Normalize(ev, base)

	fmt.Printf("under %s traffic (%.3g reads/s, %.3g writes/s):\n",
		tr.Benchmark, tr.ReadsPerSec, tr.WritesPerSec)
	fmt.Printf("  device power   %s\n", report.Eng(ev.DevicePower, "W"))
	fmt.Printf("  cooling power  %s\n", report.Eng(ev.CoolingPower, "W"))
	fmt.Printf("  total power    %s (%.4gx the 350K SRAM baseline)\n",
		report.Eng(ev.TotalPower, "W"), rel.RelPower)
	fmt.Printf("  total latency  %.3gx the baseline, slowdown=%v\n",
		rel.RelLatency, ev.Slowdown)
}
