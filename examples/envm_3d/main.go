// envm_3d walks the 3D eNVM design space the way a cache architect would:
// it characterizes every (technology, tentpole corner, die count) point,
// prints the Fig. 6-style array landscape, then picks winners per design
// target and checks their endurance-limited lifetime under a chosen
// workload mix.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	"coldtall"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/workload"
)

func main() {
	study := coldtall.NewStudy()
	exp := study.Explorer()

	points, err := explorer.ENVMSweep()
	if err != nil {
		log.Fatal(err)
	}
	base, err := exp.Characterize(explorer.Baseline())
	if err != nil {
		log.Fatal(err)
	}

	// The array landscape, relative to 1-die SRAM (Fig. 6).
	t := report.NewTable("3D eNVM array landscape at 350K (relative to 1-die SRAM)",
		"design point", "area", "rd lat", "wr lat", "rd E/acc", "wr E/acc", "leakage")
	for _, p := range points {
		r, err := exp.Characterize(p)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.Label,
			report.Rel(r.FootprintM2/base.FootprintM2),
			report.Rel(r.ReadLatency/base.ReadLatency),
			report.Rel(r.WriteLatency/base.WriteLatency),
			report.Rel(r.ReadEnergy/base.ReadEnergy),
			report.Rel(r.WriteEnergy/base.WriteEnergy),
			report.Rel(r.LeakagePower/base.LeakagePower))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Winners per design target, with lifetimes under a mixed workload.
	tr, err := workload.StaticTrafficFor("omnetpp") // a busy, write-bearing benchmark
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		label    string
		power    float64
		latency  float64
		area     float64
		lifetime float64
	}
	var rows []row
	for _, p := range points {
		ev, err := exp.Evaluate(p, tr)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			label:    p.Label,
			power:    ev.TotalPower,
			latency:  ev.AggregateLatency,
			area:     ev.Array.FootprintM2,
			lifetime: ev.LifetimeYears,
		})
	}
	pick := func(metric func(row) float64) row {
		best := rows[0]
		for _, r := range rows[1:] {
			if metric(r) < metric(best) {
				best = r
			}
		}
		return best
	}
	w := report.NewTable(fmt.Sprintf("Winners under %s traffic (%.3g reads/s, %.3g writes/s)",
		tr.Benchmark, tr.ReadsPerSec, tr.WritesPerSec),
		"target", "winner", "value", "lifetime")
	p := pick(func(r row) float64 { return r.power })
	w.AddRow("power", p.label, report.Eng(p.power, "W"), years(p.lifetime))
	l := pick(func(r row) float64 { return r.latency })
	w.AddRow("performance", l.label, fmt.Sprintf("%.4g", l.latency), years(l.lifetime))
	a := pick(func(r row) float64 { return r.area })
	w.AddRow("area", a.label, report.Area(a.area), years(a.lifetime))
	if err := w.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Lifetime ranking: which points survive a decade of this traffic?
	sort.Slice(rows, func(i, j int) bool { return rows[i].lifetime < rows[j].lifetime })
	fmt.Println("\nshortest-lived points under this write stream:")
	for _, r := range rows[:5] {
		fmt.Printf("  %-28s %s\n", r.label, years(r.lifetime))
	}
}

func years(v float64) string {
	if math.IsInf(v, 1) {
		return "no wear-out"
	}
	return fmt.Sprintf("%.1f years", v)
}
