// cryo_sweep explores temperature as a design knob — the paper's "Future
// Work" proposal that "the ideal temperature to run the processor at may
// not be exactly room temperature or cryogenic temperature".
//
// For each SPEC benchmark it sweeps SRAM and 3T-eDRAM over a fine
// temperature grid (77-387 K), charges cooling below 200 K, and reports the
// total-power-optimal operating temperature. The result reproduces the
// paper's intuition: low-traffic workloads want to be as cold as possible,
// high-traffic ones prefer warm operation, and a band in between has
// interior optima driven by the leakage/cooling trade.
package main

import (
	"fmt"
	"log"
	"os"

	"coldtall"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/workload"
)

func main() {
	study := coldtall.NewStudy()
	exp := study.Explorer()

	grid := []float64{77, 100, 125, 150, 175, 200, 225, 250, 275, 300, 325, 350, 387}

	t := report.NewTable(
		"Optimal LLC operating temperature per benchmark (total power incl. cooling below 200K)",
		"benchmark", "reads/s", "best cell", "best T (K)", "total power", "vs 350K SRAM")
	for _, tr := range workload.SortedByReads() {
		type best struct {
			label string
			temp  float64
			power float64
		}
		var b *best
		for _, temp := range grid {
			for _, mk := range []func(float64) explorer.DesignPoint{explorer.SRAMAt, explorer.EDRAMAt} {
				ev, err := exp.Evaluate(mk(temp), tr)
				if err != nil {
					log.Fatal(err)
				}
				if b == nil || ev.TotalPower < b.power {
					b = &best{label: ev.Point.Cell.Tech.String(), temp: temp, power: ev.TotalPower}
				}
			}
		}
		warm, err := exp.Evaluate(explorer.SRAMAt(350), tr)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(tr.Benchmark, fmt.Sprintf("%.3g", tr.ReadsPerSec),
			b.label, fmt.Sprintf("%.0f", b.temp),
			report.Eng(b.power, "W"), report.Rel(b.power/warm.TotalPower))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading: the coldest point wins until traffic makes the ~10x cooling")
	fmt.Println("overhead dominate; past the crossover the optimum snaps back to 350 K.")
}
