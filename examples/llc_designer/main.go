// llc_designer is the downstream-user scenario: you know (or can measure)
// your application's LLC traffic, and want a technology recommendation.
//
// It accepts read/write rates on the command line, classifies the workload
// into the paper's traffic bands, measures its own synthetic stand-in
// through the cache simulator when a known benchmark name is given, and
// recommends an LLC per design target under a chosen cooling environment —
// i.e., it answers the paper's title question for *your* workload.
//
//	llc_designer -reads 2e6 -writes 5e5
//	llc_designer -bench omnetpp -cooler 100W
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"coldtall"
	"coldtall/internal/cryo"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/workload"
)

func main() {
	reads := flag.Float64("reads", 0, "LLC read accesses per second")
	writes := flag.Float64("writes", 0, "LLC write accesses per second")
	bench := flag.String("bench", "", "or: a SPEC benchmark name, simulated to obtain rates")
	cooler := flag.String("cooler", "100kW", "cryocooler class: 100kW, 1kW, 100W, 10W")
	flag.Parse()

	tr, err := resolveTraffic(*bench, *reads, *writes)
	if err != nil {
		log.Fatal(err)
	}

	cooling, err := parseCooler(*cooler)
	if err != nil {
		log.Fatal(err)
	}
	study, err := coldtall.NewStudyWithCooling(cooling)
	if err != nil {
		log.Fatal(err)
	}
	exp := study.Explorer()

	band := workload.BandOf(tr.ReadsPerSec)
	fmt.Printf("workload: %.3g reads/s, %.3g writes/s -> %s traffic band\n",
		tr.ReadsPerSec, tr.WritesPerSec, band)
	fmt.Printf("cooling:  %s-class cryocooler (%.2f W/W below 200 K)\n\n",
		cooling.Class, cooling.Class.Overhead())

	points, err := explorer.TableIICandidates()
	if err != nil {
		log.Fatal(err)
	}
	var evals []explorer.Evaluation
	for _, p := range points {
		ev, err := exp.Evaluate(p, tr)
		if err != nil {
			log.Fatal(err)
		}
		evals = append(evals, ev)
	}

	recommend := func(name string, metric func(explorer.Evaluation) float64) {
		best := evals[0]
		for _, ev := range evals[1:] {
			if metric(ev) < metric(best) {
				best = ev
			}
		}
		note := ""
		if best.LifetimeYears < explorer.EnduranceThresholdYears {
			note = fmt.Sprintf("  [endurance: %.1f years under this write stream]", best.LifetimeYears)
		}
		if best.Slowdown {
			note += "  [warning: slower than the 350K SRAM baseline]"
		}
		value := report.Eng(metric(best), unitOf(name))
		if name == "area" {
			value = report.Area(metric(best))
		}
		fmt.Printf("  %-12s %-26s %s%s\n", name, best.Point.Label, value, note)
	}
	fmt.Println("recommendations:")
	recommend("power", func(ev explorer.Evaluation) float64 { return ev.TotalPower })
	recommend("performance", func(ev explorer.Evaluation) float64 { return ev.AggregateLatency })
	recommend("area", func(ev explorer.Evaluation) float64 { return ev.Array.FootprintM2 })

	// Show the full power ranking for context.
	fmt.Println("\nfull power ranking (total LLC power including cooling):")
	t := report.NewTable("", "design point", "total power", "rel latency", "lifetime")
	base, err := exp.Evaluate(explorer.Baseline(), tr)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < len(evals); i++ {
		for j := i + 1; j < len(evals); j++ {
			if evals[j].TotalPower < evals[i].TotalPower {
				evals[i], evals[j] = evals[j], evals[i]
			}
		}
	}
	for _, ev := range evals {
		life := "no wear-out"
		if !math.IsInf(ev.LifetimeYears, 1) {
			life = fmt.Sprintf("%.1f years", ev.LifetimeYears)
		}
		t.AddRow(ev.Point.Label, report.Eng(ev.TotalPower, "W"),
			report.Rel(ev.AggregateLatency/base.AggregateLatency), life)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func resolveTraffic(bench string, reads, writes float64) (workload.Traffic, error) {
	if bench != "" {
		p, err := workload.ProfileByName(bench)
		if err != nil {
			return workload.Traffic{}, err
		}
		fmt.Printf("simulating %s through the Table I hierarchy...\n", bench)
		return workload.Measure(p, 400000, 42)
	}
	if reads <= 0 {
		return workload.Traffic{}, fmt.Errorf("provide -reads/-writes or -bench")
	}
	return workload.Traffic{Benchmark: "custom", ReadsPerSec: reads, WritesPerSec: writes}, nil
}

func parseCooler(s string) (cryo.Cooling, error) {
	for _, c := range cryo.Classes() {
		if c.String() == s {
			return cryo.Cooling{Class: c, ThresholdK: 200}, nil
		}
	}
	return cryo.Cooling{}, fmt.Errorf("unknown cooler class %q", s)
}

func unitOf(target string) string {
	switch target {
	case "performance":
		return "s/s"
	case "area":
		return "m2"
	default:
		return "W"
	}
}
