// memory_system runs the full cross-stack pipeline for one benchmark: the
// synthetic workload through the cache hierarchy, the chosen LLC through
// the array model, the misses through the DRAM model — ending in the
// numbers an architect actually decides by: AMAT, IPC, and total
// memory-system power (LLC + DRAM + cooling).
//
//	go run ./examples/memory_system -bench mcf
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coldtall"
	"coldtall/internal/cell"
	"coldtall/internal/dram"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

func main() {
	bench := flag.String("bench", "mcf", "SPEC benchmark stand-in")
	flag.Parse()

	study := coldtall.NewStudy()
	exp := study.Explorer()

	prof, err := workload.ProfileByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := workload.StaticTrafficFor(*bench)
	if err != nil {
		log.Fatal(err)
	}

	warmMem, err := dram.New(dram.DDR4(), 300)
	if err != nil {
		log.Fatal(err)
	}
	coldMem, err := dram.New(dram.DDR4(), 77)
	if err != nil {
		log.Fatal(err)
	}

	candidates := []struct {
		point explorer.DesignPoint
		mem   dram.Model
	}{
		{explorer.Baseline(), warmMem},
		{explorer.EDRAMAt(tech.TempCryo77), warmMem},
		{explorer.EDRAMAt(tech.TempCryo77), coldMem}, // the full cryogenic system
	}
	for _, spec := range []struct {
		tech cell.Technology
		dies int
	}{{cell.STTRAM, 8}, {cell.PCM, 8}} {
		p, err := explorer.Stacked(spec.tech, cell.Optimistic, spec.dies)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, struct {
			point explorer.DesignPoint
			mem   dram.Model
		}{p, warmMem})
	}

	t := report.NewTable(
		fmt.Sprintf("Memory system under %s (%.3g LLC reads/s, %.3g writes/s)",
			*bench, tr.ReadsPerSec, tr.WritesPerSec),
		"LLC", "DRAM T", "AMAT", "rel IPC", "LLC power", "DRAM power", "system power")
	for _, cand := range candidates {
		imp, err := exp.SystemImpact(cand.point, prof, cand.mem)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := exp.Evaluate(cand.point, tr)
		if err != nil {
			log.Fatal(err)
		}
		// DRAM traffic = LLC misses; charge cooling for a cold DRAM too.
		dramRate := (tr.ReadsPerSec + tr.WritesPerSec) * imp.LLCMissRate
		dramPower := cand.mem.Power(dramRate, 0.5)
		if cand.mem.Temperature() < 200 {
			dramPower *= 1 + 9.65
		}
		t.AddRow(cand.point.Label,
			fmt.Sprintf("%.0fK", cand.mem.Temperature()),
			report.Eng(imp.AMATSeconds, "s"),
			fmt.Sprintf("%.4f", imp.RelIPC),
			report.Eng(ev.TotalPower, "W"),
			report.Eng(dramPower, "W"),
			report.Eng(ev.TotalPower+dramPower, "W"))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: the cryogenic LLC buys IPC on memory-bound workloads; whether the")
	fmt.Println("system-power column agrees depends on the traffic band — the paper's thesis.")
}
