package coldtall_test

import (
	"fmt"
	"log"
	"strings"

	"coldtall"
)

// Table I is static configuration: the CPU model every simulation uses.
func ExampleTable1() {
	for _, row := range coldtall.Table1() {
		if row.Parameter == "Frequency" || row.Parameter == "L3$" {
			fmt.Printf("%s: %s\n", row.Parameter, row.Value)
		}
	}
	// Output:
	// Frequency: 5 GHz
	// L3$: shared 16 MiB, 16 ways
}

// A study regenerates the paper's artifacts; Table II names the optimal LLC
// per traffic band.
func ExampleStudy_Table2() {
	study := coldtall.NewStudy()
	rows, err := study.Table2()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if r.Objective == "power" {
			fmt.Printf("%s -> %s\n", r.Band, r.Winner)
		}
	}
	// Output:
	// <5e4 -> 77K 3T-eDRAM
	// 5e4-8e6 -> 4-die PCM (optimistic)
	// >8e6 -> 8-die PCM (optimistic)
}

// Custom studies are JSON-driven, NVMExplorer-style.
func ExampleLoadStudyConfig() {
	cfg, err := coldtall.LoadStudyConfig(strings.NewReader(`{
		"points":    [{"technology": "3T-eDRAM", "temperature_k": 77}],
		"workloads": [{"benchmark": "leela"}]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	rows, err := coldtall.RunConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d point(s) x %d workload(s) -> %d result(s)\n",
		len(cfg.Points), len(cfg.Workloads), len(rows))
	fmt.Printf("cryogenic win on leela: %v\n", rows[0].RelTotalPower < 0.01)
	// Output:
	// 1 point(s) x 1 workload(s) -> 1 result(s)
	// cryogenic win on leela: true
}

// BandRepresentatives names the benchmark each Table II band is judged by.
func ExampleBandRepresentatives() {
	fmt.Println(strings.Join(coldtall.BandRepresentatives(), ", "))
	// Output:
	// povray, xalancbmk, mcf
}
