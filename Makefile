# Developer entry points. `make check` is the gate the parallel sweep
# engine must pass: vet clean, gofmt clean, and the full test suite under
# the race detector (the concurrency tests force multi-worker pools, so
# the parallel paths execute even on a single-CPU runner).

GO ?= go

.PHONY: build test check vet fmtcheck race servecheck jobcheck smoke artifactcheck tenantcheck tracecheck prunecheck clustercheck techcheck wlcheck goldencheck fuzz vulncheck bench searchbench golden-update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# The serving stack's own gate: vet plus the server/cache/metrics packages
# under the race detector (a fast subset of `race` for iterating on the
# HTTP layer; `check` runs both, the subset being free once `race` passed).
servecheck:
	$(GO) vet ./...
	$(GO) test -race ./internal/server/... ./internal/cache/... ./internal/metrics/...

# The persistence + async-job gate: the content-addressed store, the job
# manager (including the kill-and-resume crash-recovery test), and the
# server's job endpoints, all under the race detector.
jobcheck:
	$(GO) vet ./...
	$(GO) test -race ./internal/store/... ./internal/job/...
	$(GO) test -race -run 'TestJob|TestAsync|TestStoreWarmed|TestCharacterization|TestEviction' ./internal/server/

# Boot `coldtall serve` with a persistent store, exercise the cache path
# over real HTTP, run an async job end to end (submit, poll, byte-diff
# against the synchronous artifact), scrape /metrics, and assert a clean
# SIGTERM drain.
smoke:
	./scripts/smoke.sh

# Catalog drift check: `coldtall artifacts list` and the served
# GET /v1/artifacts must enumerate the registry identically.
artifactcheck:
	./scripts/artifactcheck.sh

# The multi-tenant gate: the tenant package (buckets, budgets, key auth,
# hot reload), the fair-share scheduler (including the FIFO-vs-fair
# byte-identity differential), and the tenant-aware server surface
# (admission, streaming, drain) under the race detector, then the
# end-to-end script — two keys against a real serve: 401s, budget 429s
# with headers, the priority-inversion check, `jobs watch` SSE
# byte-identity, per-tenant metrics, and a SIGHUP key rotation.
tenantcheck:
	$(GO) vet ./...
	$(GO) test -race ./internal/tenant/...
	$(GO) test -race -run 'TestScheduler|TestInteractiveDequeues|TestFairMatchesFIFO|TestSubmitAsQuota|TestListPage|TestSubscribe' ./internal/job/
	$(GO) test -race -run 'TestRetryAfter|TestAdmissionPool|TestAPIKey|TestTenant|TestBudget|TestJobQuota|TestJobListFilter|TestJobStatus|TestDrainFlushes|TestStream|TestOpenAPI' ./internal/server/
	./scripts/tenantcheck.sh

# Trace-toolchain drift check through the built binaries: tracegen's text
# and binary outputs must simulate identically, llcsim -dump must emit the
# canonical .ctrace encoding, and sharded replay must match serial byte
# for byte.
tracecheck:
	./scripts/tracecheck.sh

# Differential proof of the pruned organization search: the full golden
# grid through both the exhaustive reference and the pruned path under
# -race, plus the bound-admissibility property test and the Pareto filter
# equivalence. Run it whenever internal/array physics or search code moves.
prunecheck:
	./scripts/prunecheck.sh

# The distributed-execution gate: the cluster package (lease lifecycle,
# consistent-hash ring, in-process differential byte-identity incl. the
# kill-a-worker-mid-sweep scenario) under the race detector, then the
# end-to-end script — coordinator + two workers over real HTTP running a
# Table II job byte-diffed against a single-process server, repeated with
# a mid-lease SIGKILL and a requeue.
clustercheck:
	$(GO) vet ./...
	$(GO) test -race ./internal/cluster/... ./internal/server/...
	./scripts/clustercheck.sh

# Technology-backend gate: the gaincell/deepcryo/freqsweep artifacts
# byte-compared between the CLI and a real serve over HTTP, plus the new
# sweep axes (4 K gain cell, non-default core clock) characterized end to
# end through the built binary.
techcheck:
	./scripts/techcheck.sh

# Workload-intelligence gate: the signature, registry-alias, ingest,
# distill and upload packages under the race detector (dedup byte-identity,
# signature determinism, deletion ordering, chunk resume), plus the server
# surface for the new routes, then the end-to-end script — dedup round-trip
# with shared artifact bytes, distillation within tolerance, and a chunked
# upload interrupted and resumed to the exact trace content address.
wlcheck:
	$(GO) vet ./...
	$(GO) test -race ./internal/signature/... ./internal/workload/... ./internal/ingest/... ./internal/distill/...
	$(GO) test -race -run 'TestWorkload' ./internal/server/ ./cmd/coldtall/
	./scripts/wlcheck.sh

# Golden-artifact gate: every registered artifact re-generated and
# byte-compared against testdata/golden/ (no -update), so a physics or
# search change that shifts any number blocks merge explicitly.
goldencheck:
	$(GO) test -count=1 -run Golden .

# Fuzz smoke: a bounded run of each trace-facing fuzz target (the codec
# round-trip, the text parser, and the llcsim replay loop) plus the
# pruned-vs-exhaustive search differ. The corpora seeds cover the
# parser-hardening cases; CI runs this on every push.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzBinaryDecode -fuzztime 30s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzTextRoundTrip -fuzztime 30s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzReplay -fuzztime 30s ./cmd/llcsim/
	$(GO) test -run '^$$' -fuzz FuzzOptimizeConfig -fuzztime 30s ./internal/array/

# Known-vulnerability scan. Skipped (with a pointer) when govulncheck is
# not on PATH; the CI job installs it.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

check: vet fmtcheck race servecheck goldencheck

# Sweep-engine speedup benchmarks (serial vs parallel full-grid sweep).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluateAll' -benchtime 3x .

# Organization-search benchmarks: pruned vs exhaustive, the per-candidate
# bound cost, and the staircase vs quadratic Pareto filter.
searchbench:
	$(GO) test -run '^$$' -bench 'BenchmarkOptimize|BenchmarkLowerBound|BenchmarkParetoFilter' -benchtime 5x ./internal/array/

# Refresh the golden CSV snapshots after an intentional model change, then
# review the diff under testdata/golden/ like any other code change.
golden-update:
	$(GO) test -run Golden -update .
