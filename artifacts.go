package coldtall

// The artifact registry: every paper deliverable — Figs. 1–7, Tables I–II,
// and the extension sweeps — declared once as a descriptor. CSV export
// (Export, RenderArtifactCSV), human rendering (RenderArtifact), the HTTP
// API (/v1/artifacts) and the CLI (artifacts list) all iterate this
// registry; adding an artifact is adding a descriptor here.

import (
	"context"
	"io"

	"coldtall/internal/artifact"
	"coldtall/internal/report"
	"coldtall/internal/signature"
	"coldtall/internal/workload"
)

// wlsigAccesses and wlsigSeed pin the wlsig artifact's stream: the rows
// are a pure function of the profile table, so the golden harness can
// hold them byte-stable.
const (
	wlsigAccesses = 1 << 15
	wlsigSeed     = 1
)

// Column kind shorthands for the descriptor tables below.
func str(name string) report.Column { return report.Column{Name: name, Kind: report.String} }
func num(name, unit string) report.Column {
	return report.Column{Name: name, Kind: report.Float, Unit: unit}
}
func rel(name string) report.Column     { return report.Column{Name: name, Kind: report.Float} }
func count(name string) report.Column   { return report.Column{Name: name, Kind: report.Int} }
func flagCol(name string) report.Column { return report.Column{Name: name, Kind: report.Bool} }

// trafficColumns is the shared Fig. 5 / Fig. 7 schema.
var trafficColumns = []report.Column{
	str("design_point"), str("cell"), num("temperature_k", "K"), count("dies"),
	str("benchmark"), num("reads_per_sec", "1/s"), num("writes_per_sec", "1/s"),
	rel("rel_device_power"), rel("rel_total_power"), rel("rel_latency"), flagCol("slowdown"),
}

// trafficScatters is the shared Fig. 5 / Fig. 7 plot hint pair.
var trafficScatters = []artifact.Scatter{
	{
		Title: "Total LLC power vs read traffic", XLabel: "read accesses/s",
		YLabel: "power rel. to 350K SRAM (namd)",
		XCol:   "reads_per_sec", YCol: "rel_total_power", SeriesCol: "design_point",
	},
	{
		Title: "Total LLC latency vs write traffic", XLabel: "write accesses/s",
		YLabel: "latency rel. to 350K SRAM (namd)",
		XCol:   "writes_per_sec", YCol: "rel_latency", SeriesCol: "design_point",
	},
}

// buildTraffic fills a traffic table from a Fig. 5 / Fig. 7 generator.
func buildTraffic(t *report.Table, rows []TrafficRow) error {
	for _, r := range rows {
		if err := t.Append(r.Label, r.Cell, r.TemperatureK, r.Dies,
			r.Benchmark, r.ReadsPerSec, r.WritesPerSec,
			r.RelDevicePower, r.RelTotalPower, r.RelLatency, r.Slowdown); err != nil {
			return err
		}
	}
	return nil
}

// artifacts is the registry, in paper order (which is also Export's file
// order — the parallel export must be indistinguishable from a serial one,
// so order matters twice).
var artifacts = artifact.MustNew(
	artifact.Descriptor[*Study]{
		Name: "fig1", File: "fig1.csv", Paper: "Fig. 1",
		Title:   "Fig. 1: Total LLC power of SRAM running SPEC2017.namd vs temperature (relative to 350K SRAM)",
		Columns: []report.Column{num("temperature_k", "K"), rel("rel_device_power"), rel("rel_total_power")},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).Fig1()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.TemperatureK, r.RelDevicePower, r.RelTotalPower); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "fig3", File: "fig3.csv", Paper: "Fig. 3",
		Title: "Fig. 3: Array-level characterization vs temperature (relative to 350K SRAM)",
		Columns: []report.Column{
			str("cell"), num("temperature_k", "K"),
			rel("rel_read_latency"), rel("rel_write_latency"), rel("rel_read_energy"), rel("rel_write_energy"),
			rel("rel_leakage"), num("retention_s", "s"),
		},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).Fig3()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Cell, r.TemperatureK, r.RelReadLatency, r.RelWriteLatency,
					r.RelReadEnergy, r.RelWriteEnergy, r.RelLeakagePower, r.RetentionS); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "fig4", File: "fig4.csv", Paper: "Fig. 4",
		Title:   "Fig. 4: Total LLC power, namd vs leela (relative to 350K SRAM running namd)",
		Columns: []report.Column{str("benchmark"), str("cell"), rel("rel_350k"), rel("rel_77k"), rel("rel_77k_cooled")},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).Fig4()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Benchmark, r.Cell, r.Rel350K, r.Rel77K, r.Rel77KCooled); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "fig5", File: "fig5.csv", Paper: "Fig. 5",
		Title:    "Fig. 5: Total LLC power and latency for SPEC2017, 77K vs 350K (relative to 350K SRAM running namd)",
		Columns:  trafficColumns,
		Scatters: trafficScatters,
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).Fig5()
			if err != nil {
				return err
			}
			return buildTraffic(t, rows)
		},
	},
	artifact.Descriptor[*Study]{
		Name: "fig6", File: "fig6.csv", Paper: "Fig. 6",
		Title: "Fig. 6: Array-level characterization of 2D/3D eNVMs at 350K (relative to 1-die SRAM)",
		Columns: []report.Column{
			str("design_point"), str("tech"), str("corner"), count("dies"),
			rel("rel_area"), rel("rel_read_energy"), rel("rel_write_energy"),
			rel("rel_read_latency"), rel("rel_write_latency"), rel("rel_leakage"),
		},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).Fig6()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Label, r.Tech, r.Corner, r.Dies,
					r.RelArea, r.RelReadEnergy, r.RelWriteEnergy,
					r.RelReadLatency, r.RelWriteLatency, r.RelLeakagePower); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "fig7", File: "fig7.csv", Paper: "Fig. 7",
		Title:    "Fig. 7: Total LLC power and latency for 2D/3D eNVMs at 350K (relative to 350K SRAM running namd)",
		Columns:  trafficColumns,
		Scatters: trafficScatters,
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).Fig7()
			if err != nil {
				return err
			}
			return buildTraffic(t, rows)
		},
	},
	artifact.Descriptor[*Study]{
		Name: "table1", File: "table1.csv", Paper: "Table I",
		Title:   "Table I: Key CPU model parameters",
		Columns: []report.Column{str("parameter"), str("value")},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			for _, r := range Table1() {
				if err := t.Append(r.Parameter, r.Value); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "table2", File: "table2.csv", Paper: "Table II",
		Title: "Table II: Optimal LLC per read-traffic regime and design target",
		Note: "  'alt' appears when the winner's write endurance limits lifetime; the\n" +
			"  350K-family columns restrict candidates to the Destiny-framework points\n" +
			"  the paper's performance column reports (see EXPERIMENTS.md).",
		Columns: []report.Column{
			str("band"), str("objective"), str("winner"), str("alternative"),
			str("winner_350k_family"), str("alternative_350k_family"), flagCol("endurance_concern"), rel("metric"),
		},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).Table2()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Band, r.Objective, r.Winner, r.Alternative,
					r.Winner3D, r.Alternative3D, r.EnduranceConcern, r.Metric); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "cooling", File: "cooling.csv", Paper: "Sec. III-C",
		Title:   "Cooling-overhead sensitivity: 77K 3T-eDRAM vs 350K SRAM (same benchmark; <1 = cryo wins)",
		Columns: []report.Column{str("cooler"), rel("overhead"), str("benchmark"), num("reads_per_sec", "1/s"), rel("rel_total_power")},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).CoolingSweep()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Cooler, r.Overhead, r.Benchmark, r.ReadsPerSec, r.RelTotalPower); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "coldtall", File: "coldtall.csv", Paper: "Sec. VI",
		Title: "Cold AND tall (Sec. VI future work): combined cryogenic + 3D under band-representative traffic (relative to 350K 1-die SRAM on namd)",
		Columns: []report.Column{
			str("benchmark"), str("design_point"), str("cell"), count("dies"), num("temperature_k", "K"),
			rel("rel_total_power"), rel("rel_latency"), rel("rel_area"),
		},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			s = s.WithContext(ctx)
			for _, bench := range BandRepresentatives() {
				rows, err := s.ColdAndTall(bench)
				if err != nil {
					return err
				}
				for _, r := range rows {
					if err := t.Append(r.Benchmark, r.Label, r.Cell, r.Dies,
						r.TemperatureK, r.RelTotalPower, r.RelLatency, r.RelArea); err != nil {
						return err
					}
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "reliability", File: "reliability.csv", Paper: "Sec. V-B",
		Title: "Reliability under SECDED(72,64): soft write FIT, wear-out horizon, retention tail",
		Columns: []report.Column{
			str("benchmark"), num("writes_per_sec", "1/s"), str("design_point"),
			num("soft_fit", "1/1e9h"), num("wear_lifetime_years", "years"), rel("weak_bits_per_refresh"),
		},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).ReliabilityStudy()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Benchmark, r.WritesPerSec, r.Label,
					r.SoftFIT, r.WearLifetimeYears, r.RetentionWeakBits); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "gaincell", File: "gaincell.csv", Paper: "Ext. (arXiv 2503.06304)",
		Title: "Gain-cell extension: monolithically-stacked OS gain cell vs 3T-eDRAM across temperature (relative to 350K 1-die SRAM on namd)",
		Columns: []report.Column{
			str("design_point"), str("cell"), str("corner"), count("dies"), num("temperature_k", "K"),
			num("retention_s", "s"), rel("rel_device_power"), rel("rel_total_power"),
			rel("rel_latency"), rel("rel_area"), flagCol("slowdown"),
		},
		Scatters: []artifact.Scatter{{
			Title: "Gain-cell total LLC power vs temperature", XLabel: "temperature (K)",
			YLabel: "power rel. to 350K SRAM (namd)",
			XCol:   "temperature_k", YCol: "rel_total_power", SeriesCol: "design_point",
		}},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).GainCellStudy()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Label, r.Cell, r.Corner, r.Dies, r.TemperatureK,
					r.RetentionS, r.RelDevicePower, r.RelTotalPower,
					r.RelLatency, r.RelArea, r.Slowdown); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "deepcryo", File: "deepcryo.csv", Paper: "Ext. (arXiv 2408.03308)",
		Title: "Deep-cryogenic extension: SRAM and 3T-eDRAM from 4K to 300K with Carnot-scaled cooling (relative to 350K SRAM on namd)",
		Columns: []report.Column{
			str("cell"), num("temperature_k", "K"), num("cooler_w_per_w", "W/W"),
			rel("rel_device_power"), rel("rel_total_power"), rel("rel_latency"),
		},
		Scatters: []artifact.Scatter{{
			Title: "Total LLC power vs temperature, 4K-300K", XLabel: "temperature (K)",
			YLabel: "power rel. to 350K SRAM (namd)",
			XCol:   "temperature_k", YCol: "rel_total_power", SeriesCol: "cell",
		}},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).DeepCryoSweep()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Cell, r.TemperatureK, r.CoolerWPerW,
					r.RelDevicePower, r.RelTotalPower, r.RelLatency); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "freqsweep", File: "freqsweep.csv", Paper: "Ext. (frequency axis)",
		Title: "Frequency-axis extension: 350K SRAM and 77K 3T-eDRAM across core clocks under mcf (rel_perf = f x IPC vs the 5GHz SRAM baseline)",
		Columns: []report.Column{
			str("design_point"), str("cell"), num("temperature_k", "K"), num("frequency_hz", "Hz"),
			rel("rel_ipc"), rel("rel_perf"), rel("rel_total_power"), flagCol("slowdown"),
		},
		Scatters: []artifact.Scatter{{
			Title: "End-to-end performance vs core clock", XLabel: "frequency (Hz)",
			YLabel: "perf rel. to 5GHz 350K SRAM",
			XCol:   "frequency_hz", YCol: "rel_perf", SeriesCol: "design_point",
		}},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			rows, err := s.WithContext(ctx).FrequencySweep()
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := t.Append(r.Label, r.Cell, r.TemperatureK, r.FrequencyHz,
					r.RelIPC, r.RelPerf, r.RelTotalPower, r.Slowdown); err != nil {
					return err
				}
			}
			return nil
		},
	},
	artifact.Descriptor[*Study]{
		Name: "wlsig", File: "wlsig.csv", Paper: "Ext. (workload intelligence)",
		Title: "Workload-intelligence extension: locality signatures of the built-in SPEC stand-in profiles " +
			"(streamed at a pinned access count and seed; the same summary ingestion computes during replay)",
		Columns: []report.Column{
			str("benchmark"), count("accesses"), rel("read_frac"), rel("seq_frac"),
			num("footprint_bytes", "B"), count("reuse_p50"), count("reuse_p90"), str("sig_sha256"),
		},
		Build: func(ctx context.Context, s *Study, t *report.Table) error {
			for _, p := range workload.Profiles() {
				if err := ctx.Err(); err != nil {
					return err
				}
				g, err := p.Generator(wlsigSeed)
				if err != nil {
					return err
				}
				sig := signature.FromGenerator(g, wlsigAccesses)
				if err := t.Append(p.Name, wlsigAccesses, sig.ReadFrac(), sig.SeqFrac(),
					float64(sig.FootprintBytes()), int(sig.ReuseQuantile(0.5)), int(sig.ReuseQuantile(0.9)),
					sig.SHA256()[:16]); err != nil {
					return err
				}
			}
			return nil
		},
	},
)

// ArtifactDescriptor is the study-bound descriptor type — what consumers
// outside this package see when they iterate Artifacts().Descriptors().
type ArtifactDescriptor = artifact.Descriptor[*Study]

// Artifacts exposes the registry — the single source of truth the CLI, the
// CSV export and the HTTP server all derive their artifact surfaces from.
func Artifacts() *artifact.Registry[*Study] { return artifacts }

// ArtifactNames lists every exportable artifact file name ("fig1.csv", ...,
// "reliability.csv") in paper order.
func (s *Study) ArtifactNames() []string { return artifacts.Files() }

// ArtifactTable builds one artifact by registry name or file name and
// returns it as a schema-carrying table — the writer-agnostic form Export,
// RenderArtifact and the HTTP server all render from (CSV to a file or
// response body, JSON as typed columns + rows).
func (s *Study) ArtifactTable(name string) (*report.Table, error) {
	return artifacts.Build(s.context(), s, name)
}

// RenderArtifactCSV builds one artifact by name and streams it as CSV.
func (s *Study) RenderArtifactCSV(w io.Writer, name string) error {
	t, err := s.ArtifactTable(name)
	if err != nil {
		return err
	}
	return t.RenderCSV(w)
}

// RenderArtifact writes an artifact's human form — the titled table, any
// descriptor note, and (when plot is true) its scatter hints — for any
// registry name. This one renderer replaced the per-figure RenderFigN
// family; the differences between figures live in their descriptors now.
func (s *Study) RenderArtifact(w io.Writer, name string, plot bool) error {
	return artifacts.Render(s.context(), s, name, w, plot)
}
