package coldtall

import (
	"strings"
	"testing"
)

func TestImpactStudyShape(t *testing.T) {
	rows, err := study(t).ImpactStudy()
	if err != nil {
		t.Fatal(err)
	}
	// 3 benchmarks x (5 points + 1 extra cold-DRAM row for the cryo
	// point) = 18.
	if len(rows) != 18 {
		t.Fatalf("impact study has %d rows, want 18", len(rows))
	}
	find := func(bench, label string, memT float64) ImpactRow {
		for _, r := range rows {
			if r.Benchmark == bench && r.Label == label && r.MemTemperatureK == memT {
				return r
			}
		}
		t.Fatalf("missing %s/%s@%g", bench, label, memT)
		return ImpactRow{}
	}
	// The baseline is its own reference everywhere.
	for _, bench := range BandRepresentatives() {
		if r := find(bench, "350K SRAM", 300); r.RelIPC != 1 {
			t.Errorf("%s baseline RelIPC = %g", bench, r.RelIPC)
		}
	}
	// mcf (memory-bound): the cryogenic LLC lifts IPC by several percent,
	// more with a cold DRAM behind it; pessimistic PCM costs IPC.
	cryo := find("mcf", "77K 3T-eDRAM", 300)
	if cryo.RelIPC < 1.02 {
		t.Errorf("77K eDRAM on mcf RelIPC = %.4f, want a clear gain", cryo.RelIPC)
	}
	full := find("mcf", "77K 3T-eDRAM", 77)
	if full.RelIPC <= cryo.RelIPC {
		t.Error("cold DRAM should compound the cryogenic LLC's gain")
	}
	if slow := find("mcf", "1-die PCM (pessimistic)", 300); slow.RelIPC >= 1 {
		t.Errorf("pessimistic PCM on mcf RelIPC = %.4f, want < 1", slow.RelIPC)
	}
	// povray (compute-bound): the LLC choice is nearly invisible.
	for _, r := range rows {
		if r.Benchmark == "povray" && (r.RelIPC < 0.99 || r.RelIPC > 1.01) {
			t.Errorf("povray RelIPC for %s = %.4f, want ~1", r.Label, r.RelIPC)
		}
	}
}

func TestRenderImpact(t *testing.T) {
	var b strings.Builder
	if err := study(t).RenderImpact(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cross-stack", "AMAT", "rel IPC", "mcf"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}
