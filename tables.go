package coldtall

import (
	"fmt"

	"coldtall/internal/cryo"
	"coldtall/internal/explorer"
	"coldtall/internal/parallel"
	"coldtall/internal/sim"
	"coldtall/internal/workload"
)

// Table1Row is one CPU-model parameter of Table I.
type Table1Row struct {
	Parameter, Value string
}

// Table1 returns the paper's Table I (key CPU model parameters).
func Table1() []Table1Row {
	cfg := sim.TableIConfig()
	rows := []Table1Row{
		{"Class", "Desktop (based on Intel Skylake)"},
		{"Num. cores", fmt.Sprintf("%d", workload.Cores)},
		{"Process node", "22nm"},
		{"Frequency", fmt.Sprintf("%.0f GHz", workload.DefaultFrequencyHz/1e9)},
	}
	for _, l := range cfg.Levels {
		name := map[string]string{"L1D": "L1D$", "L2": "L2$", "LLC": "L3$"}[l.Name]
		val := fmt.Sprintf("%d KiB", l.SizeBytes>>10)
		if l.Name == "LLC" {
			val = fmt.Sprintf("shared %d MiB, %d ways", l.SizeBytes>>20, l.Ways)
		}
		rows = append(rows, Table1Row{name, val})
	}
	// The paper lists L1I alongside L1D; the simulator replays a unified
	// data-side stream, so L1I is reported at its architectural size.
	rows = append(rows[:4], append([]Table1Row{{"L1I$", "32 KiB"}}, rows[4:]...)...)
	return rows
}

// Table2Row is one Table II cell in display form.
type Table2Row struct {
	// Band is the read-traffic regime.
	Band string
	// Objective is the design target column.
	Objective string
	// Winner and Alternative are display labels ("-" when no alt).
	Winner, Alternative string
	// Winner3D and Alternative3D restrict candidates to the 350 K
	// family (the paper's performance column; see EXPERIMENTS.md).
	Winner3D, Alternative3D string
	// EnduranceConcern marks wear-limited winners.
	EnduranceConcern bool
	// Metric is the winner's objective value (W, aggregate latency, or
	// m^2 depending on the objective).
	Metric float64
}

// Table2 regenerates Table II: the optimal LLC per traffic band per design
// target, with endurance-aware alternatives, in both the unified view and
// the 350 K ("Destiny-family") view the paper's performance column uses.
func (s *Study) Table2() ([]Table2Row, error) {
	bands := workload.Bands()
	objs := explorer.Objectives()
	return parallel.MapContext(s.context(), len(bands)*len(objs), s.parallelism, func(i int) (Table2Row, error) {
		b, obj := bands[i/len(objs)], objs[i%len(objs)]
		c, err := s.exp.OptimalChoice(b, obj)
		if err != nil {
			return Table2Row{}, err
		}
		c3, err := s.exp.Optimal3DChoice(b, obj)
		if err != nil {
			return Table2Row{}, err
		}
		row := Table2Row{
			Band:             b.String(),
			Objective:        obj.String(),
			Winner:           c.Winner.Point.Label,
			Alternative:      "-",
			Winner3D:         c3.Winner.Point.Label,
			Alternative3D:    "-",
			EnduranceConcern: c.EnduranceConcern,
		}
		switch obj {
		case explorer.ObjPerformance:
			row.Metric = c.Winner.AggregateLatency
		case explorer.ObjArea:
			row.Metric = c.Winner.Array.FootprintM2
		default:
			row.Metric = c.Winner.TotalPower
		}
		if c.Alternative != nil {
			row.Alternative = c.Alternative.Point.Label
		}
		if c3.Alternative != nil {
			row.Alternative3D = c3.Alternative.Point.Label
		}
		return row, nil
	})
}

// CoolingRow is one point of the Section III-C cooling-overhead
// sensitivity: a cooler class applied to 77 K 3T-eDRAM under one
// benchmark's traffic, relative to the 350 K SRAM baseline for that same
// benchmark.
type CoolingRow struct {
	// Cooler names the capacity class.
	Cooler string
	// Overhead is watts of cooler input per watt removed.
	Overhead float64
	// Benchmark and its read rate.
	Benchmark   string
	ReadsPerSec float64
	// RelTotalPower is cooled 77 K 3T-eDRAM power over 350 K SRAM power
	// on the same benchmark (< 1 means cryogenic operation wins).
	RelTotalPower float64
}

// CoolingSweep regenerates the cooling-overhead sensitivity across three
// representative benchmarks (one per traffic band).
func (s *Study) CoolingSweep() ([]CoolingRow, error) {
	benches := []string{"povray", "xalancbmk", "lbm"}
	classes := cryo.Classes()
	// One sub-study per cooler class, all sharing the parent's
	// characterization cache: the two design points here (the baseline and
	// 77 K 3T-eDRAM) are cooling-independent, so they optimize once across
	// the whole sweep instead of once per cooler class. Before the shared
	// cache, this sweep rebuilt both characterizations per class — the
	// "~1x" cache-speedup outlier in EXPERIMENTS.md.
	nested, err := parallel.MapContext(s.context(), len(classes), s.parallelism, func(i int) ([]CoolingRow, error) {
		cls := classes[i]
		study, err := s.withCooling(cryo.Cooling{Class: cls, ThresholdK: 200})
		if err != nil {
			return nil, err
		}
		rows := make([]CoolingRow, 0, len(benches))
		for _, bench := range benches {
			tr, err := s.trafficFor(bench)
			if err != nil {
				return nil, err
			}
			warm, err := study.exp.EvaluateContext(study.context(), explorer.Baseline(), tr)
			if err != nil {
				return nil, err
			}
			cold, err := study.exp.EvaluateContext(study.context(), explorer.EDRAMAt(77), tr)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CoolingRow{
				Cooler:        cls.String(),
				Overhead:      cls.Overhead(),
				Benchmark:     bench,
				ReadsPerSec:   tr.ReadsPerSec,
				RelTotalPower: cold.TotalPower / warm.TotalPower,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []CoolingRow
	for _, r := range nested {
		rows = append(rows, r...)
	}
	return rows, nil
}
