package coldtall

import (
	"fmt"
	"io"

	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/tech"
	"coldtall/internal/thermal"
	"coldtall/internal/workload"
)

// The thermal study closes the loop Fig. 1 leaves open: operating
// temperature is the fixed point of the cooling environment and the chip's
// temperature-dependent power, not a free knob. A desktop-class core
// complex (fixed dynamic power plus leakage that tracks the device corner)
// plus the LLC under a benchmark's traffic is solved against air cooling
// and against the LN bath — the paper's 350 K normalization anchor emerges
// as the air-cooled equilibrium, and the bath point lands inside its 20 K
// variation band above 77 K.

// Core-complex power model constants (8 cores, desktop class).
const (
	coreDynamicW    = 38.0
	coreLeakage300W = 2.0
)

// chipPower returns total chip power at a junction temperature: core
// dynamic + core leakage scaled by the device corner + the LLC's device
// power under the benchmark's traffic at that temperature.
func (s *Study) chipPower(tempK float64, tr workload.Traffic, mk func(float64) explorer.DesignPoint) (float64, error) {
	corner, err := tech.Node22HP().At(tempK)
	if err != nil {
		return 0, err
	}
	ev, err := s.exp.Evaluate(mk(tempK), tr)
	if err != nil {
		return 0, err
	}
	return coreDynamicW + coreLeakage300W*corner.LeakageScale + ev.DevicePower, nil
}

// ThermalRow is one (benchmark, environment) equilibrium.
type ThermalRow struct {
	// Benchmark names the workload; Environment the cooling solution.
	Benchmark   string
	Environment string
	// Cell is the LLC technology solved with.
	Cell string
	// OperatingK is the self-consistent junction temperature.
	OperatingK float64
	// ChipPowerW is the equilibrium chip power (core + LLC device).
	ChipPowerW float64
	// WithinBudget reports whether the environment holds the load.
	WithinBudget bool
}

// ThermalStudy solves the self-consistent operating point for the three
// band representatives under air cooling (SRAM LLC) and the LN bath
// (3T-eDRAM LLC, the cryogenic configuration).
func (s *Study) ThermalStudy() ([]ThermalRow, error) {
	// The array model's temperature sweep is calibrated for 70-387 K;
	// solve within it.
	const minK, maxK = 77, 387
	var rows []ThermalRow
	for _, bench := range BandRepresentatives() {
		tr, err := s.trafficFor(bench)
		if err != nil {
			return nil, err
		}
		for _, env := range []struct {
			model thermal.Model
			mk    func(float64) explorer.DesignPoint
			cell  string
		}{
			{thermal.Air(), explorer.SRAMAt, "SRAM"},
			{thermal.LNBath(), explorer.EDRAMAt, "3T-eDRAM"},
		} {
			power := func(tempK float64) float64 {
				p, err := s.chipPower(tempK, tr, env.mk)
				if err != nil {
					return env.model.CapacityW // treated as exhaustion
				}
				return p
			}
			row := ThermalRow{Benchmark: bench, Environment: env.model.Name, Cell: env.cell}
			tj, err := thermal.SolveOperatingPoint(env.model, power, minK, maxK)
			if err != nil {
				row.WithinBudget = false
			} else {
				row.OperatingK = tj
				row.ChipPowerW = power(tj)
				row.WithinBudget = env.model.WithinBudget(row.ChipPowerW)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderThermal prints the thermal study.
func (s *Study) RenderThermal(w io.Writer) error {
	rows, err := s.ThermalStudy()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Thermally self-consistent operating points (Sec. V-A closed-loop)",
		"benchmark", "cooling", "LLC cell", "operating T", "chip power", "within budget")
	for _, r := range rows {
		op := "-"
		if r.OperatingK > 0 {
			op = fmt.Sprintf("%.1f K", r.OperatingK)
		}
		t.AddRow(r.Benchmark, r.Environment, r.Cell, op,
			report.Eng(r.ChipPowerW, "W"), fmt.Sprintf("%v", r.WithinBudget))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "  Air cooling equilibrates the SRAM-LLC chip near the paper's 350 K anchor;\n  the LN bath holds the cryogenic chip a few kelvin above 77 K, inside its\n  20 K variation band — the Sec. V-A argument, reproduced quantitatively.")
	return err
}
