package coldtall

import (
	"bytes"
	"strings"
	"testing"

	"coldtall/internal/report"
	"coldtall/internal/workload"
)

// TestWorkloadArtifactMatchesFullArtifact pins the restriction property:
// rendering fig5 for one static benchmark must produce exactly that
// benchmark's rows from the full artifact, same schema, same formatting.
func TestWorkloadArtifactMatchesFullArtifact(t *testing.T) {
	s := NewStudy()
	const bench = "leela"

	restricted, err := s.WorkloadArtifactTable("fig5", bench)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := Artifacts().Lookup("fig5")
	want := report.NewSchemaTable(restricted.Title, d.Columns)
	var filtered []TrafficRow
	for _, r := range full {
		if r.Benchmark == bench {
			filtered = append(filtered, r)
		}
	}
	if len(filtered) == 0 {
		t.Fatal("full fig5 has no leela rows")
	}
	if err := buildTraffic(want, filtered); err != nil {
		t.Fatal(err)
	}

	var got, exp bytes.Buffer
	if err := restricted.RenderCSV(&got); err != nil {
		t.Fatal(err)
	}
	if err := want.RenderCSV(&exp); err != nil {
		t.Fatal(err)
	}
	if got.String() != exp.String() {
		t.Fatalf("restricted fig5 differs from filtered full fig5:\n--- got\n%s--- want\n%s", got.String(), exp.String())
	}
}

// TestWorkloadArtifactCustomWorkload exercises the ingested-workload
// path: a registry entry that exists nowhere in the static table renders
// both a scatter artifact and the cold-and-tall study.
func TestWorkloadArtifactCustomWorkload(t *testing.T) {
	reg := workload.NewRegistry()
	mcf, _ := workload.StaticTrafficFor("mcf")
	src := workload.Source{
		Name: "custom1",
		Kind: workload.SourceTrace,
		Traffic: workload.Traffic{
			Benchmark:    "custom1",
			ReadsPerSec:  mcf.ReadsPerSec * 0.5,
			WritesPerSec: mcf.WritesPerSec * 2,
		},
		Accesses:    100000,
		TraceSHA256: "cafe",
	}
	if err := reg.Add(src); err != nil {
		t.Fatal(err)
	}
	s := NewStudy()
	s.SetWorkloads(reg)

	tab, err := s.WorkloadArtifactTable("fig5", "custom1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("fig5 for one workload = %d CSV lines, want header + 4 design points:\n%s", len(lines), buf.String())
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, "custom1") {
			t.Fatalf("row does not carry the workload name: %q", line)
		}
	}

	coldtall, err := s.WorkloadArtifactTable("coldtall", "custom1")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := coldtall.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "custom1"); n == 0 {
		t.Fatal("coldtall rows do not reference the custom workload")
	}
}

func TestWorkloadArtifactErrors(t *testing.T) {
	s := NewStudy()
	if _, err := s.WorkloadArtifactTable("fig1", "mcf"); err == nil {
		t.Fatal("fig1 is workload-independent; want an error")
	}
	if _, err := s.WorkloadArtifactTable("nope", "mcf"); err == nil {
		t.Fatal("want unknown-artifact error")
	}
	if _, err := s.WorkloadArtifactTable("fig5", "no-such-workload"); err == nil {
		t.Fatal("want unknown-workload error")
	}
	if !IsTrafficArtifact("fig5") || IsTrafficArtifact("table2") {
		t.Fatal("IsTrafficArtifact misclassifies")
	}
}
