package coldtall

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=. -benchmem). One benchmark per artifact:
//
//	BenchmarkFig1TemperaturePowerSweep    Fig. 1
//	BenchmarkFig3ArrayCharacterization    Fig. 3
//	BenchmarkFig4TwoBenchmarks            Fig. 4
//	BenchmarkFig5SpecSweepCryo            Fig. 5
//	BenchmarkFig6ENVM3DCharacterization   Fig. 6
//	BenchmarkFig7SpecSweepENVM            Fig. 7
//	BenchmarkTable1Config                 Table I
//	BenchmarkTable2OptimalChoice          Table II
//	BenchmarkCoolingOverheadSweep         Sec. III-C sensitivity
//
// plus ablation benches for the design choices DESIGN.md calls out
// (optimization target, 3D integration style, tentpole width, traffic
// source) and micro-benchmarks of the heavy substrates (array optimizer,
// cache simulator, trace generators).
//
// Figure benches report headline reproduction numbers via b.ReportMetric:
// e.g. Fig. 1 reports the 77 K power reduction factor, Fig. 6 the 8-die
// SRAM area reduction.

import (
	"fmt"
	"sync"
	"testing"

	"coldtall/internal/array"
	"coldtall/internal/cache"
	"coldtall/internal/cell"
	"coldtall/internal/cryo"
	"coldtall/internal/explorer"
	"coldtall/internal/sim"
	"coldtall/internal/stack"
	"coldtall/internal/trace"
	"coldtall/internal/workload"
)

// benchStudy is shared across benchmarks: the first user pays the
// characterization cost, later iterations measure the analysis layer, which
// is how the tool is used interactively.
var (
	benchOnce  sync.Once
	benchShare *Study
)

func sharedStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() { benchShare = NewStudy() })
	return benchShare
}

func BenchmarkFig1TemperaturePowerSweep(b *testing.B) {
	s := sharedStudy(b)
	var rows []Fig1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: device-power reduction at 77 K vs 350 K (paper: >50x).
	var at77, at350 float64
	for _, r := range rows {
		switch r.TemperatureK {
		case 77:
			at77 = r.RelDevicePower
		case 350:
			at350 = r.RelDevicePower
		}
	}
	b.ReportMetric(at350/at77, "x-power-reduction-77K")
}

func BenchmarkFig3ArrayCharacterization(b *testing.B) {
	s := sharedStudy(b)
	var rows []Fig3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Cell == "SRAM" && r.TemperatureK == 77 {
			b.ReportMetric((1-r.RelReadLatency)*100, "%-latency-reduction-77K")
		}
	}
}

func BenchmarkFig4TwoBenchmarks(b *testing.B) {
	s := sharedStudy(b)
	var rows []Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Benchmark == "namd" && r.Cell == "SRAM" {
			b.ReportMetric(r.Rel350K/r.Rel77KCooled, "x-namd-sram-cooled-win")
		}
	}
}

func BenchmarkFig5SpecSweepCryo(b *testing.B) {
	s := sharedStudy(b)
	var rows []TrafficRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: cooled 77K eDRAM win on povray (paper: >2500x).
	var povrayRel, baseRel float64
	for _, r := range rows {
		if r.Benchmark != "povray" {
			continue
		}
		switch r.Label {
		case "77K 3T-eDRAM":
			povrayRel = r.RelTotalPower
		case "350K SRAM":
			baseRel = r.RelTotalPower
		}
	}
	b.ReportMetric(baseRel/povrayRel, "x-povray-cooled-win")
}

func BenchmarkFig6ENVM3DCharacterization(b *testing.B) {
	s := sharedStudy(b)
	var rows []Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Label {
		case "8-die SRAM":
			b.ReportMetric((1-r.RelArea)*100, "%-sram8-area-reduction")
		case "8-die PCM (optimistic)":
			b.ReportMetric(1/r.RelArea, "x-pcm8-density-vs-sram1")
		}
	}
}

func BenchmarkFig7SpecSweepENVM(b *testing.B) {
	s := sharedStudy(b)
	var rows []TrafficRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: 8-die PCM power win on mcf vs the SRAM baseline.
	var pcm8, sram1 float64
	for _, r := range rows {
		if r.Benchmark != "mcf" {
			continue
		}
		switch r.Label {
		case "8-die PCM (optimistic)":
			pcm8 = r.RelTotalPower
		case "1-die SRAM":
			sram1 = r.RelTotalPower
		}
	}
	b.ReportMetric(sram1/pcm8, "x-mcf-pcm8-win")
}

func BenchmarkTable1Config(b *testing.B) {
	var rows []Table1Row
	for i := 0; i < b.N; i++ {
		rows = Table1()
	}
	b.ReportMetric(float64(len(rows)), "parameters")
}

func BenchmarkTable2OptimalChoice(b *testing.B) {
	s := sharedStudy(b)
	var rows []Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "table-cells")
}

func BenchmarkCoolingOverheadSweep(b *testing.B) {
	s := sharedStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.CoolingSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md).

// BenchmarkAblationOptimizationTarget compares the organization search
// under its four objectives for the baseline SRAM LLC.
func BenchmarkAblationOptimizationTarget(b *testing.B) {
	for _, target := range []array.Target{array.OptimizeEDP, array.OptimizeLatency, array.OptimizeArea, array.OptimizeEnergy} {
		b.Run(target.String(), func(b *testing.B) {
			cfg := array.DefaultLLC(cell.NewSRAM6T(), 350, stack.Planar())
			cfg.Target = target
			var r array.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = array.Optimize(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.ReadLatency*1e9, "ns-read")
			b.ReportMetric(r.FootprintM2*1e6, "mm2")
		})
	}
}

// BenchmarkAblationIntegrationStyle compares TSV, face-to-face and
// monolithic stacking at each style's maximum die count for optimistic STT.
func BenchmarkAblationIntegrationStyle(b *testing.B) {
	c, err := cell.Tentpole(cell.STTRAM, cell.Optimistic)
	if err != nil {
		b.Fatal(err)
	}
	for _, style := range []stack.Style{stack.TSVStack, stack.FaceToFace, stack.Monolithic} {
		b.Run(style.String(), func(b *testing.B) {
			cfg := array.DefaultLLC(c, 350, stack.Config{Dies: style.MaxDies(), Style: style})
			var r array.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = array.Optimize(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.ReadLatency*1e9, "ns-read")
			b.ReportMetric(r.FootprintM2*1e6, "mm2")
		})
	}
}

// BenchmarkAblationTentpoleWidth reports how far apart the optimistic and
// pessimistic corners land for each eNVM (the width of the paper's
// tentpoles) at the application level.
func BenchmarkAblationTentpoleWidth(b *testing.B) {
	s := sharedStudy(b)
	tr, err := workload.StaticTrafficFor("omnetpp")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []cell.Technology{cell.PCM, cell.STTRAM, cell.RRAM} {
		b.Run(tc.String(), func(b *testing.B) {
			var width float64
			for i := 0; i < b.N; i++ {
				opt, err := explorer.Stacked(tc, cell.Optimistic, 1)
				if err != nil {
					b.Fatal(err)
				}
				pess, err := explorer.Stacked(tc, cell.Pessimistic, 1)
				if err != nil {
					b.Fatal(err)
				}
				evOpt, err := s.Explorer().Evaluate(opt, tr)
				if err != nil {
					b.Fatal(err)
				}
				evPess, err := s.Explorer().Evaluate(pess, tr)
				if err != nil {
					b.Fatal(err)
				}
				width = evPess.TotalPower / evOpt.TotalPower
			}
			b.ReportMetric(width, "x-power-spread")
		})
	}
}

// BenchmarkAblationTrafficSource compares the static (Sniper-substitute)
// traffic table against simulator-measured traffic for mcf.
func BenchmarkAblationTrafficSource(b *testing.B) {
	b.Run("static", func(b *testing.B) {
		var tr workload.Traffic
		for i := 0; i < b.N; i++ {
			var err error
			tr, err = workload.StaticTrafficFor("mcf")
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(tr.ReadsPerSec, "reads/s")
	})
	b.Run("simulated", func(b *testing.B) {
		p, err := workload.ProfileByName("mcf")
		if err != nil {
			b.Fatal(err)
		}
		var tr workload.Traffic
		for i := 0; i < b.N; i++ {
			tr, err = workload.Measure(p, 200000, 42)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(tr.ReadsPerSec, "reads/s")
	})
}

// BenchmarkAblationCoolingCapacity sweeps the four cooler classes on the
// band-edge benchmark.
func BenchmarkAblationCoolingCapacity(b *testing.B) {
	tr, err := workload.StaticTrafficFor("xalancbmk")
	if err != nil {
		b.Fatal(err)
	}
	for _, cls := range cryo.Classes() {
		b.Run(cls.String(), func(b *testing.B) {
			e, err := explorer.WithCooling(cryo.Cooling{Class: cls, ThresholdK: 200})
			if err != nil {
				b.Fatal(err)
			}
			var ev explorer.Evaluation
			for i := 0; i < b.N; i++ {
				ev, err = e.Evaluate(explorer.EDRAMAt(77), tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ev.TotalPower*1e3, "mW-total")
		})
	}
}

// --- Sweep engine: serial vs parallel grid evaluation.

// evaluateAllGrid is the Table II point set crossed with the full
// 23-benchmark suite — the heaviest single sweep in the study.
func evaluateAllGrid(b *testing.B) ([]explorer.DesignPoint, []workload.Traffic) {
	b.Helper()
	points, err := explorer.TableIICandidates()
	if err != nil {
		b.Fatal(err)
	}
	return points, workload.StaticTraffic()
}

// benchmarkEvaluateAll measures a cold full-grid sweep at a fixed worker
// count: every iteration starts from an empty characterization cache, so
// the timing includes the array optimizations the pool actually spreads
// across cores. Compare Serial vs Parallel for the engine's speedup; on a
// single-core runner the two are expected to tie (the pool degrades to the
// serial path when only one CPU is available to the 0 = per-CPU setting,
// and goroutines cannot beat one core on CPU-bound work).
func benchmarkEvaluateAll(b *testing.B, workers int) {
	points, traffics := evaluateAllGrid(b)
	b.ReportMetric(float64(len(points)*len(traffics)), "grid-cells")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := explorer.New()
		e.Workers = workers
		if _, err := e.EvaluateAll(points, traffics); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateAllSerial(b *testing.B)   { benchmarkEvaluateAll(b, 1) }
func BenchmarkEvaluateAllParallel(b *testing.B) { benchmarkEvaluateAll(b, 0) }

// --- Substrate micro-benchmarks.

// BenchmarkArrayOptimize measures one full organization search (the
// CACTI-style inner loop every figure rests on).
func BenchmarkArrayOptimize(b *testing.B) {
	cfg := array.DefaultLLC(cell.NewSRAM6T(), 350, stack.Planar())
	for i := 0; i < b.N; i++ {
		if _, err := array.Optimize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArrayCharacterize measures a single-organization evaluation.
func BenchmarkArrayCharacterize(b *testing.B) {
	cfg := array.DefaultLLC(cell.NewSRAM6T(), 350, stack.Planar())
	org := array.Organization{Banks: 16, Rows: 512, Cols: 1024, ColumnMux: 4}
	for i := 0; i < b.N; i++ {
		if _, err := array.Characterize(cfg, org); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSimulator measures hierarchy replay throughput.
func BenchmarkCacheSimulator(b *testing.B) {
	g, err := trace.NewZipf(trace.Region{Base: 0, Size: 64 << 20}, 1.3, 0.3, 7)
	if err != nil {
		b.Fatal(err)
	}
	h, err := sim.NewHierarchy(sim.TableIConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(g.Next())
	}
}

// BenchmarkTraceGenerators measures access-stream generation rates.
func BenchmarkTraceGenerators(b *testing.B) {
	region := trace.Region{Base: 0, Size: 256 << 20}
	gens := map[string]trace.Generator{}
	if g, err := trace.NewStream(region, 1, 0.3, 1); err == nil {
		gens["stream"] = g
	}
	if g, err := trace.NewPointerChase(region, 0.3, 1); err == nil {
		gens["chase"] = g
	}
	if g, err := trace.NewZipf(region, 1.4, 0.3, 1); err == nil {
		gens["zipf"] = g
	}
	for name, g := range gens {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Next()
			}
		})
	}
}

// BenchmarkWorkloadMeasure measures the Sniper-substitute end to end.
func BenchmarkWorkloadMeasure(b *testing.B) {
	p, err := workload.ProfileByName("namd")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := workload.Measure(p, 100000, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCapacity sweeps the LLC capacity for the SRAM baseline
// (NVMExplorer's "system design space" input beyond the paper's fixed
// 16 MiB).
func BenchmarkAblationCapacity(b *testing.B) {
	s := sharedStudy(b)
	for _, mib := range []int64{4, 16, 64} {
		b.Run(fmt.Sprintf("%dMiB", mib), func(b *testing.B) {
			p := explorer.Baseline().WithCapacity(mib << 20)
			var r array.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = s.Explorer().Characterize(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.ReadLatency*1e9, "ns-read")
			b.ReportMetric(r.LeakagePower*1e3, "mW-leak")
		})
	}
}

// BenchmarkExtensionSystemImpact measures the cross-stack AMAT/IPC study
// (simulation-backed, the heaviest extension artifact).
func BenchmarkExtensionSystemImpact(b *testing.B) {
	s := sharedStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.ImpactStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionColdAndTall measures the Sec. VI combined study.
func BenchmarkExtensionColdAndTall(b *testing.B) {
	s := sharedStudy(b)
	var sum ColdAndTallSummary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = s.ColdAndTallVerdict("povray")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1/sum.PowerWinner.RelTotalPower, "x-power-win-low-traffic")
}

// BenchmarkExtensionThermalClosure measures the Sec. V-A self-consistent
// operating-point study.
func BenchmarkExtensionThermalClosure(b *testing.B) {
	s := sharedStudy(b)
	var rows []ThermalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.ThermalStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Benchmark == "mcf" && r.Environment == "air" {
			b.ReportMetric(r.OperatingK, "K-air-equilibrium")
		}
	}
}

// --- Serving stack (the `coldtall serve` fast paths).

// BenchmarkCacheHit measures the response-cache hit path the HTTP service
// answers repeated requests from: a sharded-LRU lookup returning a
// pre-rendered body, no characterization and no JSON encoding.
func BenchmarkCacheHit(b *testing.B) {
	c, err := cache.New[[]byte](1024)
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 512)
	key := "characterize|SRAM|SRAM|350|1|TSV|0|"
	c.Add(key, body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("miss on a warmed key")
		}
	}
}

// BenchmarkCharacterizeColdWarm contrasts a cold characterization (fresh
// explorer, full organization search) with a warm repeat (explorer cache
// hit) — the latency gap the serve cache turns into an HTTP fast path.
func BenchmarkCharacterizeColdWarm(b *testing.B) {
	p := explorer.Baseline()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := explorer.New().Characterize(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := explorer.New()
		if _, err := e.Characterize(p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Characterize(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionNodeScaling measures the multi-node verdict study.
func BenchmarkExtensionNodeScaling(b *testing.B) {
	s := sharedStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.NodeScaling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArtifactBuildColdWarm measures every registry artifact twice:
// cold (a fresh study, so the characterization caches are empty and the
// build pays the full array-optimization cost) and warm (repeat builds on
// a shared study, the steady state the HTTP response path and repeated CLI
// renders see). The cold/warm gap is the value of the study-level caches;
// EXPERIMENTS.md records the measured ratios.
func BenchmarkArtifactBuildColdWarm(b *testing.B) {
	for _, name := range Artifacts().Names() {
		b.Run(name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewStudy()
				if _, err := s.ArtifactTable(name); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/warm", func(b *testing.B) {
			s := sharedStudy(b)
			if _, err := s.ArtifactTable(name); err != nil {
				b.Fatal(err) // prime outside the timed loop
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ArtifactTable(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
