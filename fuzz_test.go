package coldtall

import (
	"strings"
	"testing"
)

// FuzzLoadStudyConfig hardens the JSON study parser: arbitrary input must
// parse into a validated config or return an error — never panic.
func FuzzLoadStudyConfig(f *testing.F) {
	f.Add(sampleConfig)
	f.Add(`{}`)
	f.Add(`{"points":[{"technology":"SRAM"}]}`)
	f.Add(`{"points":[{"technology":"SRAM"}],"workloads":[{"benchmark":"mcf"}]}`)
	f.Add(`{"points":[{"technology":"PCM","dies":-3}],"workloads":[{"reads_per_sec":-1}]}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := LoadStudyConfig(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(cfg.Points) == 0 || len(cfg.Workloads) == 0 {
			t.Fatalf("accepted config without points/workloads: %q", input)
		}
	})
}
