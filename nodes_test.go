package coldtall

import (
	"strings"
	"testing"
)

func TestNodeScalingShape(t *testing.T) {
	rows, err := study(t).NodeScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("node scaling has %d rows, want 9 (3 nodes x 3 bands)", len(rows))
	}
	for _, r := range rows {
		if r.PowerWatts <= 0 || r.CryoBest <= 0 || r.TallBest <= 0 {
			t.Errorf("%s/%s: non-positive powers", r.Node, r.Band)
		}
		// The verdict structure is node-invariant at the extremes:
		// cryogenic wins the low band, an eNVM stack wins the high band.
		switch r.Band {
		case "<5e4":
			if !strings.Contains(r.PowerWinner, "77K") {
				t.Errorf("%s low band winner = %s, want a cryogenic point", r.Node, r.PowerWinner)
			}
			if r.CryoBest >= r.TallBest {
				t.Errorf("%s low band: cryo (%.3g) should beat eNVM (%.3g)", r.Node, r.CryoBest, r.TallBest)
			}
		case ">8e6":
			if !strings.Contains(r.PowerWinner, "PCM") {
				t.Errorf("%s high band winner = %s, want a PCM stack", r.Node, r.PowerWinner)
			}
			if r.TallBest >= r.CryoBest {
				t.Errorf("%s high band: eNVM (%.3g) should beat cryo (%.3g)", r.Node, r.TallBest, r.CryoBest)
			}
		}
	}
}

func TestNodeScalingLabelsCarryNode(t *testing.T) {
	rows, err := study(t).NodeScaling()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Node] = true
		if !strings.Contains(r.PowerWinner, r.Node) {
			t.Errorf("winner label %q should carry node %s", r.PowerWinner, r.Node)
		}
	}
	for _, n := range []string{"16nm-HP", "22nm-HP", "45nm-HP"} {
		if !seen[n] {
			t.Errorf("missing node %s", n)
		}
	}
}

func TestRenderNodeScaling(t *testing.T) {
	var b strings.Builder
	if err := study(t).RenderNodeScaling(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Node scaling") {
		t.Error("missing title")
	}
}
