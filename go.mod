module coldtall

go 1.22
