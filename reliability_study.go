package coldtall

import (
	"fmt"
	"io"
	"math"

	"coldtall/internal/cell"
	"coldtall/internal/explorer"
	"coldtall/internal/parallel"
	"coldtall/internal/report"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// ReliabilityRow summarizes the fault behaviour of one candidate LLC under
// one band-representative benchmark — the quantitative backing for the
// paper's endurance caveat ("may be a limitation particularly for PCM and
// RRAM solutions").
type ReliabilityRow struct {
	// Benchmark and its write rate.
	Benchmark    string
	WritesPerSec float64
	// Label names the design point.
	Label string
	// SoftFIT is uncorrectable-write failures per 1e9 device-hours
	// through the LLC's SECDED code.
	SoftFIT float64
	// WearLifetimeYears is the wear-out horizon (ideal wear leveling).
	WearLifetimeYears float64
	// RetentionWeakBits is the expected weak bits per refresh pass
	// (dynamic cells only).
	RetentionWeakBits float64
}

// ReliabilityStudy analyzes the main Table II candidates under each band's
// representative write stream.
func (s *Study) ReliabilityStudy() ([]ReliabilityRow, error) {
	points := []explorer.DesignPoint{
		explorer.EDRAMAt(tech.TempHot350),
		explorer.EDRAMAt(tech.TempCryo77),
	}
	for _, tc := range []cell.Technology{cell.PCM, cell.STTRAM, cell.RRAM} {
		p, err := explorer.Stacked(tc, cell.Optimistic, 4)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	bands := workload.Bands()
	return parallel.Map(len(bands)*len(points), s.parallelism, func(i int) (ReliabilityRow, error) {
		b, p := bands[i/len(points)], points[i%len(points)]
		rep, err := workload.Representative(b)
		if err != nil {
			return ReliabilityRow{}, err
		}
		ev, err := s.exp.Evaluate(p, rep)
		if err != nil {
			return ReliabilityRow{}, err
		}
		r, err := ev.Reliability()
		if err != nil {
			return ReliabilityRow{}, err
		}
		return ReliabilityRow{
			Benchmark:         rep.Benchmark,
			WritesPerSec:      rep.WritesPerSec,
			Label:             p.Label,
			SoftFIT:           r.SoftFIT,
			WearLifetimeYears: r.WearLifetimeYears,
			RetentionWeakBits: r.RetentionWeakBitsPerRefresh,
		}, nil
	})
}

// RenderReliability prints the reliability study.
func (s *Study) RenderReliability(w io.Writer) error {
	rows, err := s.ReliabilityStudy()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Reliability under SECDED(72,64): soft write FIT, wear-out horizon, retention tail",
		"benchmark", "writes/s", "design point", "soft FIT", "wear lifetime", "weak bits/refresh")
	for _, r := range rows {
		life := "no wear-out"
		if !math.IsInf(r.WearLifetimeYears, 1) {
			life = fmt.Sprintf("%.1f years", r.WearLifetimeYears)
		}
		t.AddRow(r.Benchmark, fmt.Sprintf("%.3g", r.WritesPerSec), r.Label,
			fmt.Sprintf("%.3g", r.SoftFIT), life, fmt.Sprintf("%.3g", r.RetentionWeakBits))
	}
	return t.Render(w)
}
