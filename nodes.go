package coldtall

import (
	"fmt"
	"io"

	"coldtall/internal/cell"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// The paper fixes its comparison "at least at a fixed comparison in a 22nm
// technology node". This extension asks whether the cold-vs-tall verdict is
// a 22 nm artifact: it re-runs the band power contest on 45 nm and 16 nm HP
// presets (with feature-size-scaled wires and node-appropriate devices).

// NodeRow is one (node, band) cell of the node-scaling study.
type NodeRow struct {
	// Node names the process preset.
	Node string
	// Band is the Table II traffic regime; Benchmark its representative.
	Band      string
	Benchmark string
	// PowerWinner is the lowest-total-power design point (cooling
	// included), with its absolute power in watts.
	PowerWinner string
	PowerWatts  float64
	// CryoBest and TallBest report the best cryogenic and best 350 K
	// eNVM totals, for the margin between the camps.
	CryoBest, TallBest float64
}

// NodeScaling evaluates the band power contest on each process preset.
func (s *Study) NodeScaling() ([]NodeRow, error) {
	var rows []NodeRow
	for _, node := range tech.Nodes() {
		for _, b := range workload.Bands() {
			rep, err := workload.Representative(b)
			if err != nil {
				return nil, err
			}
			points := []explorer.DesignPoint{
				explorer.SRAMAt(tech.TempCryo77),
				explorer.EDRAMAt(tech.TempCryo77),
				explorer.Baseline(),
			}
			for _, spec := range []struct {
				tech cell.Technology
				dies int
			}{{cell.PCM, 4}, {cell.PCM, 8}, {cell.STTRAM, 8}, {cell.RRAM, 8}} {
				p, err := explorer.Stacked(spec.tech, cell.Optimistic, spec.dies)
				if err != nil {
					return nil, err
				}
				points = append(points, p)
			}
			row := NodeRow{Node: node.Name, Band: b.String(), Benchmark: rep.Benchmark}
			best := -1.0
			cryoBest, tallBest := -1.0, -1.0
			for _, p := range points {
				p = p.WithNode(node)
				ev, err := s.exp.Evaluate(p, rep)
				if err != nil {
					return nil, err
				}
				if best < 0 || ev.TotalPower < best {
					best = ev.TotalPower
					row.PowerWinner = p.Label
					row.PowerWatts = ev.TotalPower
				}
				if p.Temperature < 200 {
					if cryoBest < 0 || ev.TotalPower < cryoBest {
						cryoBest = ev.TotalPower
					}
				} else if p.Cell.Tech != cell.SRAM {
					if tallBest < 0 || ev.TotalPower < tallBest {
						tallBest = ev.TotalPower
					}
				}
			}
			row.CryoBest, row.TallBest = cryoBest, tallBest
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderNodeScaling prints the node-scaling study.
func (s *Study) RenderNodeScaling(w io.Writer) error {
	rows, err := s.NodeScaling()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Node scaling: does the cold-vs-tall power verdict survive beyond 22nm?",
		"node", "band", "benchmark", "power winner", "total power", "best cryo", "best eNVM")
	for _, r := range rows {
		t.AddRow(r.Node, r.Band, r.Benchmark, r.PowerWinner,
			report.Eng(r.PowerWatts, "W"), report.Eng(r.CryoBest, "W"), report.Eng(r.TallBest, "W"))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "  The structure is node-invariant: cryogenic wins the low band, eNVMs the\n  high band, because the contest is leakage-versus-cooling at the bottom and\n  dynamic-energy-versus-leakage at the top on every node.")
	return err
}
