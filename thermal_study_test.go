package coldtall

import (
	"strings"
	"testing"
)

func TestThermalStudyClosesTheLoop(t *testing.T) {
	rows, err := study(t).ThermalStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("thermal study has %d rows, want 6 (3 benchmarks x 2 environments)", len(rows))
	}
	for _, r := range rows {
		if !r.WithinBudget {
			t.Errorf("%s/%s exceeds its cooling budget", r.Benchmark, r.Environment)
			continue
		}
		switch r.Environment {
		case "air":
			// The paper's 350 K normalization anchor emerges as the
			// air-cooled equilibrium of the SRAM-LLC chip.
			if r.OperatingK < 330 || r.OperatingK > 365 {
				t.Errorf("%s air equilibrium %.1f K, want near 350 K", r.Benchmark, r.OperatingK)
			}
			if r.Cell != "SRAM" {
				t.Errorf("air row should use the SRAM LLC")
			}
		case "ln-bath":
			// The bath holds the chip within its 20 K variation band.
			if r.OperatingK < 77 || r.OperatingK > 97 {
				t.Errorf("%s bath equilibrium %.1f K, want 77-97 K", r.Benchmark, r.OperatingK)
			}
			if r.Cell != "3T-eDRAM" {
				t.Errorf("bath row should use the gain-cell LLC")
			}
		default:
			t.Errorf("unknown environment %q", r.Environment)
		}
		if r.ChipPowerW <= coreDynamicW {
			t.Errorf("%s/%s chip power %.1f W should exceed the core's dynamic floor",
				r.Benchmark, r.Environment, r.ChipPowerW)
		}
	}
}

func TestThermalStudyColdChipDrawsLess(t *testing.T) {
	rows, err := study(t).ThermalStudy()
	if err != nil {
		t.Fatal(err)
	}
	byEnv := map[string]float64{}
	for _, r := range rows {
		if r.Benchmark == "mcf" {
			byEnv[r.Environment] = r.ChipPowerW
		}
	}
	// The cryogenic chip's device power (before cooling overhead) is
	// lower: core leakage and LLC leakage are gone.
	if byEnv["ln-bath"] >= byEnv["air"] {
		t.Errorf("cold chip (%.1f W) should draw less than the warm one (%.1f W)",
			byEnv["ln-bath"], byEnv["air"])
	}
}

func TestRenderThermal(t *testing.T) {
	var b strings.Builder
	if err := study(t).RenderThermal(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"self-consistent", "ln-bath", "air"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}
