package coldtall

import (
	"encoding/json"
	"fmt"
	"io"

	"coldtall/internal/cell"
	"coldtall/internal/cryo"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/stack"
	"coldtall/internal/workload"
)

// StudyConfig is the JSON schema of a user-defined study, mirroring
// NVMExplorer's config-file-driven flow: a set of design points (circuit
// and system choices) crossed with a set of workloads (application
// characteristics), evaluated under a cooling environment.
//
//	{
//	  "cooler": "100kW",
//	  "points": [
//	    {"label": "my cold cache", "technology": "3T-eDRAM", "temperature_k": 77},
//	    {"technology": "PCM", "corner": "optimistic", "dies": 8}
//	  ],
//	  "workloads": [
//	    {"benchmark": "mcf"},
//	    {"name": "my service", "reads_per_sec": 2e6, "writes_per_sec": 5e5},
//	    {"benchmark": "leela", "simulate": true}
//	  ]
//	}
type StudyConfig struct {
	// Cooler selects the cryocooler class ("100kW", "1kW", "100W",
	// "10W"); empty means the paper's default 100 kW.
	Cooler string `json:"cooler,omitempty"`
	// Points are the LLC design points to evaluate.
	Points []PointConfig `json:"points"`
	// Workloads are the traffic loads to evaluate them under.
	Workloads []WorkloadConfig `json:"workloads"`
}

// PointConfig describes one design point in JSON form.
type PointConfig struct {
	// Label is optional; a descriptive one is generated when empty.
	Label string `json:"label,omitempty"`
	// Technology is one of SRAM, 3T-eDRAM, 1T1C-eDRAM, PCM, STT-RAM,
	// RRAM, SOT-RAM.
	Technology string `json:"technology"`
	// Corner selects the eNVM tentpole ("optimistic"/"pessimistic");
	// ignored for the volatile technologies. Empty means optimistic.
	Corner string `json:"corner,omitempty"`
	// TemperatureK defaults to 350.
	TemperatureK float64 `json:"temperature_k,omitempty"`
	// Dies defaults to 1; Style to "tsv".
	Dies  int    `json:"dies,omitempty"`
	Style string `json:"style,omitempty"`
	// CapacityMiB overrides the 16 MiB LLC capacity.
	CapacityMiB int64 `json:"capacity_mib,omitempty"`
}

// WorkloadConfig describes one workload in JSON form: either a SPEC
// benchmark name (static rates, or simulated when Simulate is set) or
// custom rates.
type WorkloadConfig struct {
	// Benchmark names a SPEC stand-in; empty means custom rates.
	Benchmark string `json:"benchmark,omitempty"`
	// Simulate measures the benchmark through the cache simulator
	// instead of using the static table.
	Simulate bool `json:"simulate,omitempty"`
	// Name labels a custom workload.
	Name string `json:"name,omitempty"`
	// ReadsPerSec / WritesPerSec define custom LLC traffic.
	ReadsPerSec  float64 `json:"reads_per_sec,omitempty"`
	WritesPerSec float64 `json:"writes_per_sec,omitempty"`
}

// LoadStudyConfig parses and validates a JSON study description.
func LoadStudyConfig(r io.Reader) (StudyConfig, error) {
	var cfg StudyConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return StudyConfig{}, fmt.Errorf("coldtall: parsing study config: %w", err)
	}
	if len(cfg.Points) == 0 {
		return StudyConfig{}, fmt.Errorf("coldtall: study config needs at least one point")
	}
	if len(cfg.Workloads) == 0 {
		return StudyConfig{}, fmt.Errorf("coldtall: study config needs at least one workload")
	}
	return cfg, nil
}

// point lowers a PointConfig into an explorer design point.
func (pc PointConfig) point() (explorer.DesignPoint, error) {
	tech, err := cell.ParseTechnology(pc.Technology)
	if err != nil {
		return explorer.DesignPoint{}, err
	}
	var c cell.Cell
	switch tech {
	case cell.SRAM, cell.EDRAM3T, cell.EDRAM1T1C:
		c, err = cell.Builtin(tech)
	default:
		corner := cell.Optimistic
		switch pc.Corner {
		case "", "optimistic":
		case "pessimistic":
			corner = cell.Pessimistic
		default:
			return explorer.DesignPoint{}, fmt.Errorf("coldtall: unknown corner %q", pc.Corner)
		}
		c, err = cell.Tentpole(tech, corner)
	}
	if err != nil {
		return explorer.DesignPoint{}, err
	}
	temp := pc.TemperatureK
	if temp == 0 {
		temp = 350
	}
	dies := pc.Dies
	if dies == 0 {
		dies = 1
	}
	styleName := pc.Style
	if styleName == "" {
		styleName = "tsv"
	}
	style, err := stack.ParseStyle(styleName)
	if err != nil {
		return explorer.DesignPoint{}, err
	}
	label := pc.Label
	if label == "" {
		label = fmt.Sprintf("%d-die %s @%.0fK", dies, c.Name, temp)
	}
	p := explorer.DesignPoint{
		Label:       label,
		Cell:        c,
		Temperature: temp,
		Dies:        dies,
		Style:       style,
	}
	if pc.CapacityMiB > 0 {
		p.CapacityBytes = pc.CapacityMiB << 20
	}
	return p, p.Validate()
}

// traffic lowers a WorkloadConfig into traffic rates.
func (wc WorkloadConfig) traffic() (workload.Traffic, error) {
	if wc.Benchmark != "" {
		if wc.Simulate {
			p, err := workload.ProfileByName(wc.Benchmark)
			if err != nil {
				return workload.Traffic{}, err
			}
			return workload.Measure(p, 400000, 42)
		}
		return workload.StaticTrafficFor(wc.Benchmark)
	}
	if wc.ReadsPerSec <= 0 && wc.WritesPerSec <= 0 {
		return workload.Traffic{}, fmt.Errorf("coldtall: workload needs a benchmark or positive rates")
	}
	name := wc.Name
	if name == "" {
		name = "custom"
	}
	tr := workload.Traffic{Benchmark: name, ReadsPerSec: wc.ReadsPerSec, WritesPerSec: wc.WritesPerSec}
	return tr, tr.Validate()
}

// RunConfig evaluates a study config: every point under every workload,
// normalized to the paper's baseline, exactly like the built-in figures.
func RunConfig(cfg StudyConfig) ([]TrafficRow, error) {
	cooling := cryo.DefaultCooling()
	if cfg.Cooler != "" {
		found := false
		for _, cls := range cryo.Classes() {
			if cls.String() == cfg.Cooler {
				cooling.Class = cls
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("coldtall: unknown cooler %q", cfg.Cooler)
		}
	}
	s, err := NewStudyWithCooling(cooling)
	if err != nil {
		return nil, err
	}
	base, err := s.baseline()
	if err != nil {
		return nil, err
	}
	var rows []TrafficRow
	for _, pc := range cfg.Points {
		p, err := pc.point()
		if err != nil {
			return nil, err
		}
		for _, wc := range cfg.Workloads {
			tr, err := wc.traffic()
			if err != nil {
				return nil, err
			}
			ev, err := s.exp.Evaluate(p, tr)
			if err != nil {
				return nil, err
			}
			rel := explorer.Normalize(ev, base)
			rows = append(rows, TrafficRow{
				Label:          p.Label,
				Cell:           p.Cell.Tech.String(),
				TemperatureK:   p.Temperature,
				Dies:           p.Dies,
				Benchmark:      tr.Benchmark,
				ReadsPerSec:    tr.ReadsPerSec,
				WritesPerSec:   tr.WritesPerSec,
				RelDevicePower: rel.RelDevicePower,
				RelTotalPower:  rel.RelPower,
				RelLatency:     rel.RelLatency,
				Slowdown:       ev.Slowdown,
			})
		}
	}
	return rows, nil
}

// RunConfigAndRender evaluates a study config and prints the result table.
func RunConfigAndRender(r io.Reader, w io.Writer) error {
	cfg, err := LoadStudyConfig(r)
	if err != nil {
		return err
	}
	rows, err := RunConfig(cfg)
	if err != nil {
		return err
	}
	// Custom studies share the registry's traffic schema, so they render
	// (and could export) exactly like Fig. 5 / Fig. 7.
	t := report.NewSchemaTable("Custom study (relative to 350K 1-die SRAM on namd)", trafficColumns)
	if err := buildTraffic(t, rows); err != nil {
		return err
	}
	return t.Render(w)
}
