package coldtall

import (
	"strings"

	"coldtall/internal/cell"
	"coldtall/internal/cryo"
	"coldtall/internal/explorer"
	"coldtall/internal/parallel"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// Fig1Row is one temperature point of Fig. 1: total LLC power of a
// simulated client CPU running SPEC2017.namd between 77 K and 387 K,
// relative to SRAM at 350 K.
type Fig1Row struct {
	// TemperatureK is the operating temperature.
	TemperatureK float64
	// RelDevicePower is LLC power without cooling, relative to 350 K.
	RelDevicePower float64
	// RelTotalPower includes the 9.65x cryocooler overhead below 200 K.
	RelTotalPower float64
}

// Fig1 regenerates Fig. 1.
func (s *Study) Fig1() ([]Fig1Row, error) {
	base, err := s.baseline()
	if err != nil {
		return nil, err
	}
	tr, err := s.trafficFor(explorer.ReferenceBenchmark)
	if err != nil {
		return nil, err
	}
	temps := cryo.EffectiveTemperatures()
	return parallel.MapContext(s.context(), len(temps), s.parallelism, func(i int) (Fig1Row, error) {
		ev, err := s.exp.EvaluateContext(s.context(), explorer.SRAMAt(temps[i]), tr)
		if err != nil {
			return Fig1Row{}, err
		}
		rel := explorer.Normalize(ev, base)
		return Fig1Row{
			TemperatureK:   temps[i],
			RelDevicePower: rel.RelDevicePower,
			RelTotalPower:  rel.RelPower,
		}, nil
	})
}

// Fig3Row is one (cell, temperature) point of Fig. 3: array-level
// characterization of 16 MB iso-capacity SRAM and 3T-eDRAM under varying
// temperature, relative to SRAM at 350 K.
type Fig3Row struct {
	// Cell names the technology ("SRAM" or "3T-eDRAM").
	Cell string
	// TemperatureK is the operating temperature.
	TemperatureK float64
	// Array-level ratios vs the 350 K SRAM array.
	RelReadLatency, RelWriteLatency  float64
	RelReadEnergy, RelWriteEnergy    float64
	RelLeakagePower, RelRefreshPower float64
	// RetentionS is the absolute eDRAM retention (Inf for SRAM).
	RetentionS float64
}

// Fig3 regenerates Fig. 3.
func (s *Study) Fig3() ([]Fig3Row, error) {
	baseArr, err := s.exp.CharacterizeContext(s.context(), explorer.Baseline())
	if err != nil {
		return nil, err
	}
	temps := cryo.EffectiveTemperatures()
	mks := []func(float64) explorer.DesignPoint{explorer.SRAMAt, explorer.EDRAMAt}
	// Establish each cell family's organization ranking once before the
	// parallel temperature sweep fans out (see WarmFamiliesContext).
	sweep := make([]explorer.DesignPoint, 0, len(temps)*len(mks))
	for _, temp := range temps {
		for _, mk := range mks {
			sweep = append(sweep, mk(temp))
		}
	}
	if err := s.exp.WarmFamiliesContext(s.context(), sweep); err != nil {
		return nil, err
	}
	return parallel.MapContext(s.context(), len(temps)*len(mks), s.parallelism, func(i int) (Fig3Row, error) {
		temp := temps[i/len(mks)]
		p := mks[i%len(mks)](temp)
		r, err := s.exp.CharacterizeContext(s.context(), p)
		if err != nil {
			return Fig3Row{}, err
		}
		relRefresh := 0.0
		if baseArr.LeakagePower > 0 {
			relRefresh = r.RefreshPower / baseArr.LeakagePower
		}
		return Fig3Row{
			Cell:            p.Cell.Tech.String(),
			TemperatureK:    temp,
			RelReadLatency:  r.ReadLatency / baseArr.ReadLatency,
			RelWriteLatency: r.WriteLatency / baseArr.WriteLatency,
			RelReadEnergy:   r.ReadEnergyPerBit / baseArr.ReadEnergyPerBit,
			RelWriteEnergy:  r.WriteEnergyPerBit / baseArr.WriteEnergyPerBit,
			RelLeakagePower: r.LeakagePower / baseArr.LeakagePower,
			RelRefreshPower: relRefresh,
			RetentionS:      r.Retention,
		}, nil
	})
}

// Fig4Row is one (benchmark, cell) group of Fig. 4: total LLC power at
// 350 K, at 77 K, and at 77 K including cooling, relative to 350 K SRAM
// running namd.
type Fig4Row struct {
	Benchmark string
	Cell      string
	// Relative total LLC power for the three operating conditions.
	Rel350K, Rel77K, Rel77KCooled float64
}

// Fig4 regenerates Fig. 4 (namd and leela).
func (s *Study) Fig4() ([]Fig4Row, error) {
	base, err := s.baseline()
	if err != nil {
		return nil, err
	}
	benches := []string{"namd", "leela"}
	mks := []func(float64) explorer.DesignPoint{explorer.SRAMAt, explorer.EDRAMAt}
	return parallel.MapContext(s.context(), len(benches)*len(mks), s.parallelism, func(i int) (Fig4Row, error) {
		bench := benches[i/len(mks)]
		mk := mks[i%len(mks)]
		tr, err := s.trafficFor(bench)
		if err != nil {
			return Fig4Row{}, err
		}
		warm, err := s.exp.EvaluateContext(s.context(), mk(tech.TempHot350), tr)
		if err != nil {
			return Fig4Row{}, err
		}
		cold, err := s.exp.EvaluateContext(s.context(), mk(tech.TempCryo77), tr)
		if err != nil {
			return Fig4Row{}, err
		}
		return Fig4Row{
			Benchmark:    bench,
			Cell:         warm.Point.Cell.Tech.String(),
			Rel350K:      warm.DevicePower / base.TotalPower,
			Rel77K:       cold.DevicePower / base.TotalPower,
			Rel77KCooled: cold.TotalPower / base.TotalPower,
		}, nil
	})
}

// TrafficRow is one (design point, benchmark) point of the Fig. 5 / Fig. 7
// scatter plots: traffic on the X axis, relative power and latency on Y.
type TrafficRow struct {
	// Label names the design point.
	Label string
	// Cell, TemperatureK, Dies identify it.
	Cell         string
	TemperatureK float64
	Dies         int
	// Benchmark and its traffic rates.
	Benchmark    string
	ReadsPerSec  float64
	WritesPerSec float64
	// RelDevicePower and RelTotalPower are vs 350 K SRAM running namd
	// (the paper's reference normalization); RelLatency likewise.
	RelDevicePower float64
	RelTotalPower  float64
	RelLatency     float64
	// Slowdown is the paper's performance check: relative total latency
	// above 1 versus 350 K SRAM on the same benchmark, or bandwidth
	// shortfall.
	Slowdown bool
}

// Fig5 regenerates Fig. 5: SRAM and 3T-eDRAM at 77 K and 350 K across the
// full SPECrate 2017 suite.
func (s *Study) Fig5() ([]TrafficRow, error) {
	return s.trafficStudy(fig5Points())
}

// fig5Points is the Fig. 5 design-point set (volatile cells at both
// operating temperatures), shared with per-workload artifact rendering.
func fig5Points() []explorer.DesignPoint {
	return []explorer.DesignPoint{
		explorer.SRAMAt(tech.TempHot350), explorer.EDRAMAt(tech.TempHot350),
		explorer.SRAMAt(tech.TempCryo77), explorer.EDRAMAt(tech.TempCryo77),
	}
}

// Fig7 regenerates Fig. 7: the 2D/3D eNVM sweep (SRAM, PCM, STT-RAM, RRAM;
// optimistic and pessimistic; 1-8 dies) at 350 K across the suite.
func (s *Study) Fig7() ([]TrafficRow, error) {
	points, err := explorer.ENVMSweep()
	if err != nil {
		return nil, err
	}
	return s.trafficStudy(points)
}

// trafficStudy evaluates points across the whole static suite, normalized
// to the namd/350 K-SRAM baseline. The points×benchmarks grid fans out
// through the explorer's worker pool; rows keep the serial order (each
// point's benchmarks ascending by read rate).
func (s *Study) trafficStudy(points []explorer.DesignPoint) ([]TrafficRow, error) {
	return s.trafficStudyFor(points, workload.SortedByReads())
}

// trafficStudyFor is trafficStudy over an explicit workload set — the
// restriction per-workload artifact rendering uses to build Fig. 5 / 7
// rows for one ingested workload.
func (s *Study) trafficStudyFor(points []explorer.DesignPoint, traffics []workload.Traffic) ([]TrafficRow, error) {
	base, err := s.baseline()
	if err != nil {
		return nil, err
	}
	grid, err := s.exp.EvaluateAllContext(s.context(), points, traffics)
	if err != nil {
		return nil, err
	}
	rows := make([]TrafficRow, 0, len(points)*len(traffics))
	for i, p := range points {
		for j, tr := range traffics {
			ev := grid[i][j]
			rel := explorer.Normalize(ev, base)
			rows = append(rows, TrafficRow{
				Label:          p.Label,
				Cell:           p.Cell.Tech.String(),
				TemperatureK:   p.Temperature,
				Dies:           p.Dies,
				Benchmark:      tr.Benchmark,
				ReadsPerSec:    tr.ReadsPerSec,
				WritesPerSec:   tr.WritesPerSec,
				RelDevicePower: rel.RelDevicePower,
				RelTotalPower:  rel.RelPower,
				RelLatency:     rel.RelLatency,
				Slowdown:       ev.Slowdown,
			})
		}
	}
	return rows, nil
}

// Fig6Row is one design point of Fig. 6: array-level characterization of 2D
// and 3D eNVMs at 350 K relative to 16 MB 2D SRAM.
type Fig6Row struct {
	// Label names the point ("8-die PCM (optimistic)").
	Label  string
	Tech   string
	Corner string
	Dies   int
	// Array-level ratios vs the 1-die 350 K SRAM array.
	RelArea                         float64
	RelReadEnergy, RelWriteEnergy   float64
	RelReadLatency, RelWriteLatency float64
	RelLeakagePower                 float64
}

// Fig6 regenerates Fig. 6.
func (s *Study) Fig6() ([]Fig6Row, error) {
	baseArr, err := s.exp.CharacterizeContext(s.context(), explorer.Baseline())
	if err != nil {
		return nil, err
	}
	points, err := explorer.ENVMSweep()
	if err != nil {
		return nil, err
	}
	// Establish each eNVM family's organization ranking once before the
	// parallel layer sweep fans out (see WarmFamiliesContext).
	if err := s.exp.WarmFamiliesContext(s.context(), points); err != nil {
		return nil, err
	}
	return parallel.MapContext(s.context(), len(points), s.parallelism, func(i int) (Fig6Row, error) {
		p := points[i]
		r, err := s.exp.CharacterizeContext(s.context(), p)
		if err != nil {
			return Fig6Row{}, err
		}
		// Corner is encoded in the tentpole cell name suffix; SRAM has
		// no tentpole corner.
		corner := ""
		if p.Cell.Tech != cell.SRAM {
			switch {
			case strings.HasSuffix(p.Cell.Name, cell.Pessimistic.String()):
				corner = cell.Pessimistic.String()
			case strings.HasSuffix(p.Cell.Name, cell.Optimistic.String()):
				corner = cell.Optimistic.String()
			}
		}
		return Fig6Row{
			Label:           p.Label,
			Tech:            p.Cell.Tech.String(),
			Corner:          corner,
			Dies:            p.Dies,
			RelArea:         r.FootprintM2 / baseArr.FootprintM2,
			RelReadEnergy:   r.ReadEnergyPerBit / baseArr.ReadEnergyPerBit,
			RelWriteEnergy:  r.WriteEnergyPerBit / baseArr.WriteEnergyPerBit,
			RelReadLatency:  r.ReadLatency / baseArr.ReadLatency,
			RelWriteLatency: r.WriteLatency / baseArr.WriteLatency,
			RelLeakagePower: r.LeakagePower / baseArr.LeakagePower,
		}, nil
	})
}
