package coldtall

import (
	"fmt"
	"io"

	"coldtall/internal/cell"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/stack"
	"coldtall/internal/tech"
	"coldtall/internal/workload"
)

// The paper's Section VI proposes two follow-on studies; both are
// implemented here. First, temperature as a continuous design knob (see
// examples/cryo_sweep). Second — "a future interesting work would be to
// combine both 3D stacking with cryogenic computing to achieve both highly
// performant and low power/temperature chips for the broadest range of
// workload traffic patterns" — the ColdAndTall study below.

// ColdAndTallRow is one (cell, dies, temperature) point of the combined
// study evaluated under one benchmark's traffic.
type ColdAndTallRow struct {
	// Label names the design point ("8-die 3T-eDRAM @77K").
	Label        string
	Cell         string
	Dies         int
	TemperatureK float64
	Benchmark    string
	// RelTotalPower (incl. cooling) and RelLatency are vs the 350 K
	// 1-die SRAM baseline on the reference benchmark.
	RelTotalPower float64
	RelLatency    float64
	// RelArea is the per-die footprint vs the baseline.
	RelArea float64
}

// ColdAndTall crosses the volatile technologies (SRAM, 3T-eDRAM — the
// cells that remain functional at 77 K) with stacking degrees 1-8 and both
// operating temperatures, under the given benchmark. The eNVMs stay at
// 350 K: phase-change dynamics and MTJ switching degrade at cryogenic
// temperatures, so the paper's combination question is about cold volatile
// stacks versus warm non-volatile stacks.
func (s *Study) ColdAndTall(benchmark string) ([]ColdAndTallRow, error) {
	tr, err := s.trafficFor(benchmark)
	if err != nil {
		return nil, err
	}
	base, err := s.baseline()
	if err != nil {
		return nil, err
	}
	var rows []ColdAndTallRow
	for _, tc := range []cell.Technology{cell.SRAM, cell.EDRAM3T} {
		c, err := cell.Builtin(tc)
		if err != nil {
			return nil, err
		}
		for _, dies := range []int{1, 2, 4, 8} {
			for _, temp := range []float64{tech.TempHot350, tech.TempCryo77} {
				p := explorer.DesignPoint{
					Label:       fmt.Sprintf("%d-die %s @%.0fK", dies, tc, temp),
					Cell:        c,
					Temperature: temp,
					Dies:        dies,
					Style:       stack.TSVStack,
				}
				ev, err := s.exp.Evaluate(p, tr)
				if err != nil {
					return nil, err
				}
				rel := explorer.Normalize(ev, base)
				rows = append(rows, ColdAndTallRow{
					Label:         p.Label,
					Cell:          tc.String(),
					Dies:          dies,
					TemperatureK:  temp,
					Benchmark:     benchmark,
					RelTotalPower: rel.RelPower,
					RelLatency:    rel.RelLatency,
					RelArea:       rel.RelArea,
				})
			}
		}
	}
	return rows, nil
}

// ColdAndTallBest returns, for one benchmark, the combined-study winner by
// total power and by latency, plus the best warm eNVM point for contrast.
type ColdAndTallSummary struct {
	Benchmark string
	// PowerWinner and LatencyWinner come from the cold-and-tall grid.
	PowerWinner, LatencyWinner ColdAndTallRow
	// WarmENVMPower is the best 350 K eNVM total power (relative), for
	// the "cold or tall?" verdict.
	WarmENVMPower float64
	WarmENVMLabel string
}

// ColdAndTallVerdict runs the combined study and answers the title
// question for the benchmark: is the best LLC cold, tall, or both?
func (s *Study) ColdAndTallVerdict(benchmark string) (ColdAndTallSummary, error) {
	rows, err := s.ColdAndTall(benchmark)
	if err != nil {
		return ColdAndTallSummary{}, err
	}
	sum := ColdAndTallSummary{Benchmark: benchmark, PowerWinner: rows[0], LatencyWinner: rows[0]}
	for _, r := range rows[1:] {
		if r.RelTotalPower < sum.PowerWinner.RelTotalPower {
			sum.PowerWinner = r
		}
		if r.RelLatency < sum.LatencyWinner.RelLatency {
			sum.LatencyWinner = r
		}
	}
	// Best warm eNVM for contrast.
	tr, err := s.trafficFor(benchmark)
	if err != nil {
		return ColdAndTallSummary{}, err
	}
	base, err := s.baseline()
	if err != nil {
		return ColdAndTallSummary{}, err
	}
	points, err := explorer.ENVMSweep()
	if err != nil {
		return ColdAndTallSummary{}, err
	}
	best := -1.0
	for _, p := range points {
		if p.Cell.Tech == cell.SRAM {
			continue
		}
		ev, err := s.exp.Evaluate(p, tr)
		if err != nil {
			return ColdAndTallSummary{}, err
		}
		rel := explorer.Normalize(ev, base)
		if best < 0 || rel.RelPower < best {
			best = rel.RelPower
			sum.WarmENVMLabel = p.Label
		}
	}
	sum.WarmENVMPower = best
	return sum, nil
}

// RenderColdAndTall prints the combined study for the three band
// representatives: one table and one verdict line per benchmark. This is
// the extension study's rich view — the registry's "coldtall" artifact is
// the same grid flattened into one CSV-exportable table.
func (s *Study) RenderColdAndTall(w io.Writer) error {
	for _, bench := range BandRepresentatives() {
		rows, err := s.ColdAndTall(bench)
		if err != nil {
			return err
		}
		sum, err := s.ColdAndTallVerdict(bench)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("Cold AND tall (Sec. VI future work) under %s traffic (relative to 350K 1-die SRAM on namd)", bench),
			"design point", "rel power+cooling", "rel latency", "rel area")
		for _, r := range rows {
			t.AddRow(r.Label, report.Rel(r.RelTotalPower), report.Rel(r.RelLatency), report.Rel(r.RelArea))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"  verdict: power winner %s (%.4g), latency winner %s (%.4g); best warm eNVM %s (%.4g)\n\n",
			sum.PowerWinner.Label, sum.PowerWinner.RelTotalPower,
			sum.LatencyWinner.Label, sum.LatencyWinner.RelLatency,
			sum.WarmENVMLabel, sum.WarmENVMPower); err != nil {
			return err
		}
	}
	return nil
}

// BandRepresentatives returns the benchmark names the combined study
// reports on (one per Table II traffic band).
func BandRepresentatives() []string {
	out := make([]string, 0, 3)
	for _, b := range workload.Bands() {
		if rep, err := workload.Representative(b); err == nil {
			out = append(out, rep.Benchmark)
		}
	}
	return out
}
