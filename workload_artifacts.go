package coldtall

// Per-workload artifact rendering: the traffic-dependent artifacts
// restricted to a single (possibly ingested) workload. This is the
// surface that closes the ingestion loop — a custom trace uploaded to the
// server comes back out as the same Fig. 5 / Fig. 7 / cold-and-tall rows
// the static SPEC suite gets, rendered from the same descriptors with the
// same schemas.

import (
	"fmt"
	"io"

	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/workload"
)

// TrafficArtifactNames lists the artifacts that can be rendered for a
// single workload: those whose rows are per-benchmark functions of LLC
// traffic. Array-characterization artifacts (fig1, fig3, fig6, ...) are
// workload-independent and stay registry-only.
func TrafficArtifactNames() []string { return []string{"fig5", "fig7", "coldtall"} }

// IsTrafficArtifact reports whether name (registry name, not file name)
// renders per-workload.
func IsTrafficArtifact(name string) bool {
	for _, n := range TrafficArtifactNames() {
		if n == name {
			return true
		}
	}
	return false
}

// WorkloadArtifactTable builds one traffic-dependent artifact restricted
// to a single workload, resolved through the study's registry (so both
// static SPEC names and ingested workloads work). The schema is the
// registry descriptor's; only the row set differs — for a static
// benchmark the rows are byte-identical to that benchmark's rows in the
// full artifact.
func (s *Study) WorkloadArtifactTable(artifactName, workloadName string) (*report.Table, error) {
	d, ok := Artifacts().Lookup(artifactName)
	if !ok || !IsTrafficArtifact(d.Name) {
		return nil, fmt.Errorf("coldtall: %q is not a per-workload artifact (want one of %v)", artifactName, TrafficArtifactNames())
	}
	tr, err := s.trafficFor(workloadName)
	if err != nil {
		return nil, err
	}
	t := report.NewSchemaTable(fmt.Sprintf("%s [workload: %s]", d.Title, workloadName), d.Columns)
	switch d.Name {
	case "fig5", "fig7":
		points := fig5Points()
		if d.Name == "fig7" {
			if points, err = explorer.ENVMSweep(); err != nil {
				return nil, err
			}
		}
		rows, err := s.trafficStudyFor(points, []workload.Traffic{tr})
		if err != nil {
			return nil, err
		}
		if err := buildTraffic(t, rows); err != nil {
			return nil, err
		}
	case "coldtall":
		rows, err := s.ColdAndTall(workloadName)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := t.Append(r.Benchmark, r.Label, r.Cell, r.Dies,
				r.TemperatureK, r.RelTotalPower, r.RelLatency, r.RelArea); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// RenderWorkloadArtifactCSV streams one per-workload artifact as CSV —
// the byte form both the synchronous HTTP path and the job-result path
// serve, so the two are identical by construction.
func (s *Study) RenderWorkloadArtifactCSV(w io.Writer, artifactName, workloadName string) error {
	t, err := s.WorkloadArtifactTable(artifactName, workloadName)
	if err != nil {
		return err
	}
	return t.RenderCSV(w)
}
