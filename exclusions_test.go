package coldtall

import (
	"strings"
	"testing"
)

func TestExclusionStudyShape(t *testing.T) {
	rows, err := study(t).ExclusionStudy()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ExclusionRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	oneTC := byLabel["350K 1T1C-eDRAM"]
	gain := byLabel["350K 3T-eDRAM"]
	sram := byLabel["350K SRAM"]
	if oneTC.Label == "" || gain.Label == "" || sram.Label == "" {
		t.Fatalf("missing rows: %v", byLabel)
	}
	// The paper's exclusion reason: 1T1C is slower than SRAM and
	// 3T-eDRAM (destructive reads pay a restore) ...
	if oneTC.RelReadLatency <= sram.RelReadLatency || oneTC.RelReadLatency <= gain.RelReadLatency {
		t.Errorf("1T1C read latency %.3f should exceed SRAM (%.3f) and 3T (%.3f)",
			oneTC.RelReadLatency, sram.RelReadLatency, gain.RelReadLatency)
	}
	if oneTC.RelWriteLatency <= gain.RelWriteLatency {
		t.Error("1T1C writes should be slower than the gain cell's")
	}
	// ... and its dynamic energy exceeds the gain cell's, with a heavier
	// refresh burden.
	if oneTC.RelReadEnergy <= gain.RelReadEnergy {
		t.Errorf("1T1C read energy %.3f should exceed 3T-eDRAM's %.3f",
			oneTC.RelReadEnergy, gain.RelReadEnergy)
	}
	if oneTC.RelRefresh <= gain.RelRefresh {
		t.Error("1T1C should refresh harder than the gain cell")
	}
	// SOT: better writes than STT, worse reads (Sec. II-B).
	sot := byLabel["1-die SOT-RAM (optimistic)"]
	stt := byLabel["1-die STT-RAM (optimistic)"]
	if sot.RelWriteEnergy >= stt.RelWriteEnergy {
		t.Error("SOT write energy should undercut STT's")
	}
	if sot.RelReadLatency <= stt.RelReadLatency {
		t.Error("SOT read latency should exceed STT's")
	}
}

func TestRenderExclusions(t *testing.T) {
	var b strings.Builder
	if err := study(t).RenderExclusions(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1T1C-eDRAM", "SOT-RAM", "refresh"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}
