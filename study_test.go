package coldtall

import (
	"encoding/csv"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"coldtall/internal/cryo"
	"coldtall/internal/workload"
)

// one shared study: every figure reuses cached characterizations.
var (
	studyOnce sync.Once
	theStudy  *Study
)

func study(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() { theStudy = NewStudy() })
	return theStudy
}

func TestFig1Shape(t *testing.T) {
	rows, err := study(t).Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Fig 1 has %d temperature points, want 8", len(rows))
	}
	byTemp := map[float64]Fig1Row{}
	for i, r := range rows {
		byTemp[r.TemperatureK] = r
		if i > 0 && r.TemperatureK <= rows[i-1].TemperatureK {
			t.Error("temperatures not ascending")
		}
	}
	// 350 K normalizes to 1.
	if math.Abs(byTemp[350].RelDevicePower-1) > 1e-9 {
		t.Errorf("350 K should normalize to 1, got %g", byTemp[350].RelDevicePower)
	}
	// Paper: >50x reduction at 77 K; net benefit survives cooling.
	if byTemp[77].RelDevicePower > 1.0/50 {
		t.Errorf("77 K relative power %.4f, want < 0.02", byTemp[77].RelDevicePower)
	}
	if byTemp[77].RelTotalPower >= 0.5 {
		t.Errorf("77 K incl cooling %.3f, want < 0.5 (paper: >50%% reduction)", byTemp[77].RelTotalPower)
	}
	// 387 K is worse than 350 K.
	if byTemp[387].RelDevicePower <= 1 {
		t.Error("387 K should exceed the 350 K baseline")
	}
}

func TestFig3Shape(t *testing.T) {
	rows, err := study(t).Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("Fig 3 has %d rows, want 16 (8 temps x 2 cells)", len(rows))
	}
	find := func(cellName string, temp float64) Fig3Row {
		for _, r := range rows {
			if r.Cell == cellName && r.TemperatureK == temp {
				return r
			}
		}
		t.Fatalf("missing row %s@%g", cellName, temp)
		return Fig3Row{}
	}
	s77, s350 := find("SRAM", 77), find("SRAM", 350)
	e77, e387 := find("3T-eDRAM", 77), find("3T-eDRAM", 387)
	// Latency ~70% lower at 77 K.
	if red := 1 - s77.RelReadLatency/s350.RelReadLatency; red < 0.6 || red > 0.88 {
		t.Errorf("77 K latency reduction %.0f%%, want 60-88%%", red*100)
	}
	// Leakage ~1e6x lower.
	if r := s350.RelLeakagePower / s77.RelLeakagePower; r < 1e5 {
		t.Errorf("leakage collapse %.3g, want ~1e6", r)
	}
	// eDRAM leakage 10-100x below SRAM across the range.
	if r := s77.RelLeakagePower / e77.RelLeakagePower; r < 5 || r > 20 {
		t.Errorf("eDRAM leakage advantage at 77K = %.1f, want ~10", r)
	}
	if r := find("SRAM", 387).RelLeakagePower / e387.RelLeakagePower; r < 50 || r > 200 {
		t.Errorf("eDRAM leakage advantage at 387K = %.1f, want ~100", r)
	}
	// Dynamic energy nearly flat (~10%).
	if spread := s350.RelReadEnergy/s77.RelReadEnergy - 1; math.Abs(spread) > 0.15 {
		t.Errorf("read-energy temperature spread %.2f, want small", spread)
	}
	// eDRAM retention stretches >1e4x from 350 K to 77 K.
	if gain := e77.RetentionS / find("3T-eDRAM", 350).RetentionS; gain < 1e4 {
		t.Errorf("retention gain %.3g, want > 1e4", gain)
	}
}

func TestFig4Shape(t *testing.T) {
	rows, err := study(t).Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Fig 4 has %d rows, want 4", len(rows))
	}
	find := func(bench, cellName string) Fig4Row {
		for _, r := range rows {
			if r.Benchmark == bench && r.Cell == cellName {
				return r
			}
		}
		t.Fatalf("missing %s/%s", bench, cellName)
		return Fig4Row{}
	}
	namdS, namdE := find("namd", "SRAM"), find("namd", "3T-eDRAM")
	leelaS, leelaE := find("leela", "SRAM"), find("leela", "3T-eDRAM")
	// namd: cryo SRAM wins even cooled; cryo eDRAM loses to 350 K eDRAM.
	if namdS.Rel77KCooled >= namdS.Rel350K {
		t.Error("namd: cooled 77K SRAM should beat 350K SRAM")
	}
	if namdE.Rel77KCooled <= namdE.Rel350K {
		t.Error("namd: cooled 77K eDRAM should lose to 350K eDRAM (paper Fig. 4)")
	}
	// leela: cryo wins for both.
	if leelaS.Rel77KCooled >= leelaS.Rel350K || leelaE.Rel77KCooled >= leelaE.Rel350K {
		t.Error("leela: cooled cryo should win for both technologies")
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := study(t).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*23 {
		t.Fatalf("Fig 5 has %d rows, want 92 (4 points x 23 benchmarks)", len(rows))
	}
	// 77K 3T-eDRAM device power is the minimum for every benchmark.
	best := map[string]TrafficRow{}
	for _, r := range rows {
		if cur, ok := best[r.Benchmark]; !ok || r.RelDevicePower < cur.RelDevicePower {
			best[r.Benchmark] = r
		}
	}
	for bench, r := range best {
		if r.Label != "77K 3T-eDRAM" {
			t.Errorf("%s: lowest device power is %s, want 77K 3T-eDRAM", bench, r.Label)
		}
	}
	// The cooled-cryo crossover exists: some high-traffic benchmark has
	// RelTotalPower above its own-benchmark SRAM baseline; a low-traffic
	// one does not. Use the slowdown-free subset.
	var lbmCold, povrayCold TrafficRow
	for _, r := range rows {
		if r.Label == "77K 3T-eDRAM" && r.Benchmark == "lbm" {
			lbmCold = r
		}
		if r.Label == "77K 3T-eDRAM" && r.Benchmark == "povray" {
			povrayCold = r
		}
	}
	if povrayCold.RelTotalPower > 1e-3 {
		t.Errorf("povray cooled cryo rel power %.4g, want < 1e-3 (>2500x win)", povrayCold.RelTotalPower)
	}
	if lbmCold.RelTotalPower < 0.5 {
		t.Errorf("lbm cooled cryo rel power %.3f, want near/above baseline", lbmCold.RelTotalPower)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := study(t).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 28 {
		t.Fatalf("Fig 6 has %d rows, want 28", len(rows))
	}
	find := func(label string) Fig6Row {
		for _, r := range rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("missing %q", label)
		return Fig6Row{}
	}
	s8 := find("8-die SRAM")
	p8 := find("8-die PCM (optimistic)")
	p1 := find("1-die PCM (optimistic)")
	if s8.RelArea > 0.2 {
		t.Errorf("8-die SRAM rel area %.3f, want < 0.2 (>80%% reduction)", s8.RelArea)
	}
	if p8.RelArea > 0.1 {
		t.Errorf("8-die PCM rel area %.3f, want < 0.1 (>10x denser than 1-die SRAM)", p8.RelArea)
	}
	if red := 1 - p8.RelArea/p1.RelArea; red < 0.2 || red > 0.45 {
		t.Errorf("PCM stacking area reduction %.0f%%, want ~30%%", red*100)
	}
	if p8.RelReadLatency > 0.4 {
		t.Errorf("8-die PCM rel read latency %.3f, want well below baseline", p8.RelReadLatency)
	}
	t8 := find("8-die STT-RAM (optimistic)")
	if t8.RelWriteLatency >= find("1-die SRAM").RelWriteLatency {
		t.Error("8-die STT should beat SRAM write latency")
	}
	// Corner labels populated for eNVMs, empty for SRAM.
	if p8.Corner != "optimistic" || s8.Corner != "" {
		t.Errorf("corner labels wrong: %q %q", p8.Corner, s8.Corner)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := study(t).Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 28*23 {
		t.Fatalf("Fig 7 has %d rows, want 644", len(rows))
	}
	// 8-die PCM optimistic is the power winner on mcf.
	var best TrafficRow
	first := true
	for _, r := range rows {
		if r.Benchmark != "mcf" {
			continue
		}
		if first || r.RelTotalPower < best.RelTotalPower {
			best, first = r, false
		}
	}
	if best.Label != "8-die PCM (optimistic)" {
		t.Errorf("mcf power winner = %s, want 8-die PCM (optimistic)", best.Label)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string]string{
		"Class":        "Desktop (based on Intel Skylake)",
		"Num. cores":   "8",
		"Process node": "22nm",
		"Frequency":    "5 GHz",
		"L1I$":         "32 KiB",
		"L1D$":         "32 KiB",
		"L2$":          "512 KiB",
		"L3$":          "shared 16 MiB, 16 ways",
	}
	if len(rows) != len(want) {
		t.Fatalf("Table I has %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if w, ok := want[r.Parameter]; !ok || w != r.Value {
			t.Errorf("Table I %q = %q, want %q", r.Parameter, r.Value, want[r.Parameter])
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := study(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	find := func(band, obj string) Table2Row {
		for _, r := range rows {
			if r.Band == band && r.Objective == obj {
				return r
			}
		}
		t.Fatalf("missing %s/%s", band, obj)
		return Table2Row{}
	}
	// Power column: 77K 3T-eDRAM / 4-die PCM (alt 77K 3T-eDRAM) /
	// 8-die PCM (alt 8-die SRAM).
	if r := find("<5e4", "power"); r.Winner != "77K 3T-eDRAM" || r.Alternative != "-" {
		t.Errorf("low power row = %+v", r)
	}
	if r := find("5e4-8e6", "power"); r.Winner != "4-die PCM (optimistic)" || r.Alternative != "77K 3T-eDRAM" {
		t.Errorf("mid power row = %+v", r)
	}
	if r := find(">8e6", "power"); r.Winner != "8-die PCM (optimistic)" || r.Alternative != "8-die SRAM" {
		t.Errorf("high power row = %+v", r)
	}
	// Performance (350K-family view): 8-die STT / 8-die STT / 8-die PCM.
	if r := find("<5e4", "performance"); r.Winner3D != "8-die STT-RAM (optimistic)" {
		t.Errorf("low perf 3D = %q", r.Winner3D)
	}
	if r := find(">8e6", "performance"); r.Winner3D != "8-die PCM (optimistic)" {
		t.Errorf("high perf 3D = %q", r.Winner3D)
	}
	// Area: 8-die PCM, alt 3D STT where endurance bites.
	if r := find("5e4-8e6", "area"); r.Winner != "8-die PCM (optimistic)" ||
		!strings.Contains(r.Alternative, "STT") {
		t.Errorf("mid area row = %+v", r)
	}
}

func TestCoolingSweepShape(t *testing.T) {
	rows, err := study(t).CoolingSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("cooling sweep has %d rows, want 12 (4 coolers x 3 benchmarks)", len(rows))
	}
	// For each benchmark, relative power grows with overhead.
	prev := map[string]float64{}
	for _, r := range rows {
		if p, ok := prev[r.Benchmark]; ok && r.RelTotalPower <= p {
			t.Errorf("%s: rel power should grow with cooler overhead", r.Benchmark)
		}
		prev[r.Benchmark] = r.RelTotalPower
	}
	// povray wins under every cooler; lbm loses under every cooler.
	for _, r := range rows {
		switch r.Benchmark {
		case "povray":
			if r.RelTotalPower >= 1 {
				t.Errorf("povray should win even with the %s cooler", r.Cooler)
			}
		case "lbm":
			if r.RelTotalPower <= 1 {
				t.Errorf("lbm should lose even with the %s cooler", r.Cooler)
			}
		}
	}
}

// TestCoolingSweepSharesCharacterizations pins the cache-bypass fix: the
// sweep touches two unique design points (the 350 K SRAM baseline and 77 K
// 3T-eDRAM) across four cooler classes, and the per-class sub-studies share
// the parent's characterization cache, so the optimizer runs exactly twice
// — not twice per class.
func TestCoolingSweepSharesCharacterizations(t *testing.T) {
	s := NewStudy()
	if _, err := s.CoolingSweep(); err != nil {
		t.Fatal(err)
	}
	if got := s.Explorer().OptimizeCalls(); got != 2 {
		t.Errorf("cooling sweep ran Optimize %d times, want 2 (characterizations shared across cooler classes)", got)
	}
}

func TestNewStudyWithCoolingValidates(t *testing.T) {
	if _, err := NewStudyWithCooling(cryo.Cooling{Class: cryo.Cooler1kW, ThresholdK: -1}); err == nil {
		t.Error("invalid cooling should be rejected")
	}
	s, err := NewStudyWithCooling(cryo.Cooling{Class: cryo.Cooler10W, ThresholdK: 200})
	if err != nil || s.Explorer() == nil {
		t.Fatalf("NewStudyWithCooling failed: %v", err)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	s := study(t)
	// Every registry artifact renders through the one generic renderer;
	// fig5 also exercises the plot path (its descriptor carries scatter
	// hints).
	for _, name := range Artifacts().Names() {
		var b strings.Builder
		if err := s.RenderArtifact(&b, name, name == "fig5"); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if b.Len() < 100 {
			t.Errorf("%s: suspiciously short output (%d bytes)", name, b.Len())
		}
	}
}

func TestStudySharesCacheAcrossFigures(t *testing.T) {
	// Regenerating a figure must be deterministic.
	a, err := study(t).Fig1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := study(t).Fig1()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Fig1 not deterministic")
		}
	}
}

func TestBandsCoverAllBenchmarks(t *testing.T) {
	rows, err := study(t).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Benchmark] = true
	}
	for _, name := range workload.Names() {
		if !seen[name] {
			t.Errorf("benchmark %s missing from Fig 5", name)
		}
	}
}

func TestExportWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := study(t).Export(dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig1.csv", "fig3.csv", "fig4.csv", "fig5.csv", "fig6.csv", "fig7.csv",
		"table1.csv", "table2.csv", "cooling.csv", "coldtall.csv", "reliability.csv",
	}
	for _, name := range want {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		lines := strings.Count(string(b), "\n")
		if lines < 2 {
			t.Errorf("%s has %d lines, want header + data", name, lines)
		}
	}
}

func TestExportFig5CSVShape(t *testing.T) {
	dir := t.TempDir()
	if err := study(t).Export(dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(string(b)))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+4*23 {
		t.Errorf("fig5.csv has %d records, want header + 92", len(recs))
	}
	if recs[0][0] != "design_point" {
		t.Errorf("unexpected header %v", recs[0])
	}
}
