package main

import (
	"strings"
	"testing"

	"coldtall/internal/sim"
)

// FuzzReplay hardens the trace parser: arbitrary input must either replay
// cleanly or return an error — never panic, and never mis-count.
func FuzzReplay(f *testing.F) {
	f.Add("R 0x1000\nW 0x2000\n")
	f.Add("# comment\n\nr 0x0\n")
	f.Add("X 0x10\n")
	f.Add("R zz\n")
	f.Add("R 0x1 tail\n")
	f.Add(strings.Repeat("W 0xffffffffffff0\n", 3))
	f.Add("R 0X1000\r\nW 0X2000\r\n")               // 0X prefix + CRLF
	f.Add("R 0x" + strings.Repeat("f", 16) + "\n")  // max-width address
	f.Add("R 0x1" + strings.Repeat("0", 16) + "\n") // 17 digits: rejected
	f.Add("# comment\r\n\r\nw ffffffffffffffff\n")  // bare max hex
	f.Fuzz(func(t *testing.T, input string) {
		h, err := sim.NewHierarchy(sim.TableIConfig())
		if err != nil {
			t.Fatal(err)
		}
		n, err := replay(h, strings.NewReader(input))
		if err != nil {
			return // malformed input is rejected, fine
		}
		if n < 0 {
			t.Fatalf("negative access count %d", n)
		}
		if got := h.LevelStats(0).Accesses(); got != uint64(n) {
			t.Fatalf("replayed %d accesses but L1 saw %d", n, got)
		}
	})
}
