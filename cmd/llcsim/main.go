// Command llcsim replays a memory-access trace through the Table I cache
// hierarchy and reports per-level statistics plus the extrapolated
// continuous-operation LLC traffic the paper plots benchmarks by. The
// input format is autodetected: tracegen's text format (one "R 0x<addr>"
// or "W 0x<addr>" per line) or the compact .ctrace binary format, on
// stdin or from a file.
//
//	tracegen -bench mcf -n 500000 | llcsim -bench mcf
//	tracegen -bench mcf -n 500000 -format binary | llcsim -bench mcf
//	llcsim -trace mcf.ctrace -copies 8 -shards 16
//	llcsim -trace mcf.trace -dump mcf.ctrace   # convert while simulating
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"coldtall/internal/report"
	"coldtall/internal/sim"
	"coldtall/internal/trace"
	"coldtall/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "llcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("llcsim", flag.ContinueOnError)
	tracePath := fs.String("trace", "-", "trace file path (text or .ctrace, autodetected), or - for stdin")
	copies := fs.Int("copies", 8, "SPECrate copies sharing the LLC")
	bench := fs.String("bench", "", "benchmark profile for time extrapolation (IPC, memory intensity); empty reports counts only")
	shards := fs.Int("shards", 0, "set-bank shards replayed in parallel (power of two; 1 = serial; 0 = auto: serial on one core, sized to the pool otherwise)")
	workers := fs.Int("workers", 0, "worker goroutines for sharded replay (0 = one per CPU)")
	dump := fs.String("dump", "", "also write the trace in canonical .ctrace binary form to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	cfg := sim.TableIConfig()
	cfg.SharedCopies = *copies
	eng, err := sim.NewSharded(cfg, *shards, *workers)
	if err != nil {
		return err
	}

	reader := trace.NewReader(r)
	if *dump != "" {
		// Conversion mode buffers the stream so the canonical encoding and
		// the simulation read the same accesses exactly once from the input.
		accesses, err := trace.ReadAll(reader)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dump, trace.EncodeBinary(accesses), 0o644); err != nil {
			return err
		}
		if err := eng.Replay(context.Background(), accesses); err != nil {
			return err
		}
		return render(stdout, eng, uint64(len(accesses)), *copies, *bench)
	}
	n, err := eng.ReplayReader(context.Background(), reader, 0, nil)
	if err != nil {
		return err
	}
	return render(stdout, eng, n, *copies, *bench)
}

// render prints the per-level table and, with -bench, the extrapolated
// traffic rates.
func render(stdout io.Writer, eng *sim.Sharded, n uint64, copies int, bench string) error {
	stats := eng.Snapshot()
	t := report.NewTable(fmt.Sprintf("llcsim: %d accesses through the Table I hierarchy", n),
		"level", "reads", "writes", "read miss", "write miss", "writebacks", "miss rate")
	for i, s := range stats.Levels {
		t.AddRow(stats.Names[i],
			fmt.Sprintf("%d", s.Reads), fmt.Sprintf("%d", s.Writes),
			fmt.Sprintf("%d", s.ReadMisses), fmt.Sprintf("%d", s.WriteMisses),
			fmt.Sprintf("%d", s.Writebacks), fmt.Sprintf("%.4f", s.MissRate()))
	}
	t.AddRow("memory", fmt.Sprintf("%d", stats.MemReads), fmt.Sprintf("%d", stats.MemWrites), "-", "-", "-", "-")
	if err := t.Render(stdout); err != nil {
		return err
	}

	if bench == "" {
		return nil
	}
	p, err := workload.ProfileByName(bench)
	if err != nil {
		return err
	}
	llc := stats.LLC()
	// The shared calibration formula assumes the paper's 8-core client CPU;
	// -copies rescales its per-chip rates.
	tr := workload.Extrapolate(p.Name, llc.Reads, llc.Writes, n, p.MemOpsPerKiloInstr, p.IPC)
	scale := float64(copies) / workload.Cores
	fmt.Fprintf(stdout, "\nextrapolated continuous-operation LLC traffic (%d copies at %.0f GHz, %s-class core):\n",
		copies, workload.FrequencyHz/1e9, p.Name)
	fmt.Fprintf(stdout, "  reads/s  = %.3g\n", tr.ReadsPerSec*scale)
	fmt.Fprintf(stdout, "  writes/s = %.3g\n", tr.WritesPerSec*scale)
	return nil
}

// replay feeds a hierarchy from the textual trace format — the serial
// reference path the tests and the fuzz harness drive directly; run() goes
// through the sharded engine with format autodetection instead.
func replay(h *sim.Hierarchy, r io.Reader) (int, error) {
	tr := trace.NewTextReader(r)
	n := 0
	for {
		a, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		h.Access(a)
		n++
	}
}
