// Command llcsim replays a memory-access trace (tracegen's format: one
// "R 0x<addr>" or "W 0x<addr>" per line on stdin, or a file) through the
// Table I cache hierarchy and reports per-level statistics plus the
// extrapolated continuous-operation LLC traffic the paper plots benchmarks
// by.
//
//	tracegen -bench mcf -n 500000 | llcsim -bench mcf
//	llcsim -trace mcf.trace -copies 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"coldtall/internal/report"
	"coldtall/internal/sim"
	"coldtall/internal/trace"
	"coldtall/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "llcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("llcsim", flag.ContinueOnError)
	tracePath := fs.String("trace", "-", "trace file path, or - for stdin")
	copies := fs.Int("copies", 8, "SPECrate copies sharing the LLC")
	bench := fs.String("bench", "", "benchmark profile for time extrapolation (IPC, memory intensity); empty reports counts only")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	cfg := sim.TableIConfig()
	cfg.SharedCopies = *copies
	h, err := sim.NewHierarchy(cfg)
	if err != nil {
		return err
	}

	n, err := replay(h, r)
	if err != nil {
		return err
	}

	t := report.NewTable(fmt.Sprintf("llcsim: %d accesses through the Table I hierarchy", n),
		"level", "reads", "writes", "read miss", "write miss", "writebacks", "miss rate")
	for i := 0; i < h.Levels(); i++ {
		s := h.LevelStats(i)
		t.AddRow(h.LevelName(i),
			fmt.Sprintf("%d", s.Reads), fmt.Sprintf("%d", s.Writes),
			fmt.Sprintf("%d", s.ReadMisses), fmt.Sprintf("%d", s.WriteMisses),
			fmt.Sprintf("%d", s.Writebacks), fmt.Sprintf("%.4f", s.MissRate()))
	}
	memR, memW := h.MemoryTraffic()
	t.AddRow("memory", fmt.Sprintf("%d", memR), fmt.Sprintf("%d", memW), "-", "-", "-", "-")
	if err := t.Render(stdout); err != nil {
		return err
	}

	if *bench == "" {
		return nil
	}
	p, err := workload.ProfileByName(*bench)
	if err != nil {
		return err
	}
	llc := h.LLCStats()
	instructions := float64(n) * 1000 / p.MemOpsPerKiloInstr
	seconds := instructions / p.IPC / workload.FrequencyHz
	fmt.Fprintf(stdout, "\nextrapolated continuous-operation LLC traffic (%d copies at %.0f GHz, %s-class core):\n",
		*copies, workload.FrequencyHz/1e9, p.Name)
	fmt.Fprintf(stdout, "  reads/s  = %.3g\n", float64(llc.Reads)/seconds*float64(*copies))
	fmt.Fprintf(stdout, "  writes/s = %.3g\n", float64(llc.Writes)/seconds*float64(*copies))
	return nil
}

// replay feeds the hierarchy from the textual trace format.
func replay(h *sim.Hierarchy, r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return n, fmt.Errorf("line %d: want \"R|W 0xADDR\", got %q", n+1, line)
		}
		var write bool
		switch fields[0] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return n, fmt.Errorf("line %d: unknown access kind %q", n+1, fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return n, fmt.Errorf("line %d: bad address %q: %w", n+1, fields[1], err)
		}
		h.Access(trace.Access{Addr: addr, Write: write})
		n++
	}
	return n, sc.Err()
}
