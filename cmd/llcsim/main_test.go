package main

import (
	"strings"
	"testing"

	"coldtall/internal/sim"
)

func TestReplayParsesTraceFormat(t *testing.T) {
	h, err := sim.NewHierarchy(sim.TableIConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("R 0x1000\nW 0x2000\n# comment\n\nr 0x3000\nw 0x4000\n")
	n, err := replay(h, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("replayed %d accesses, want 4", n)
	}
	s := h.LevelStats(0)
	if s.Reads != 2 || s.Writes != 2 {
		t.Errorf("L1 saw %d reads %d writes, want 2/2", s.Reads, s.Writes)
	}
}

func TestReplayRejectsMalformedLines(t *testing.T) {
	h, _ := sim.NewHierarchy(sim.TableIConfig())
	cases := []string{
		"R\n",           // missing address
		"X 0x10\n",      // unknown kind
		"R 0xzz\n",      // bad hex
		"R 0x1 extra\n", // too many fields
	}
	for _, in := range cases {
		if _, err := replay(h, strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", strings.TrimSpace(in))
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	in := strings.NewReader("R 0x1000\nW 0x1000\nR 0x200000\n")
	var out strings.Builder
	if err := run([]string{"-copies", "8", "-bench", "leela"}, in, &out); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	for _, want := range []string{"L1D", "LLC", "memory", "extrapolated", "reads/s"} {
		if !strings.Contains(o, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunWithoutBenchSkipsExtrapolation(t *testing.T) {
	in := strings.NewReader("R 0x1000\n")
	var out strings.Builder
	if err := run(nil, in, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "extrapolated") {
		t.Error("extrapolation should require -bench")
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	in := strings.NewReader("R 0x1000\n")
	var out strings.Builder
	if err := run([]string{"-bench", "doom"}, in, &out); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestRunRejectsMissingTraceFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trace", "/nonexistent/file"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing trace file should fail")
	}
}
