package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coldtall/internal/sim"
	"coldtall/internal/trace"
)

func TestReplayParsesTraceFormat(t *testing.T) {
	h, err := sim.NewHierarchy(sim.TableIConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("R 0x1000\nW 0x2000\n# comment\n\nr 0x3000\nw 0x4000\n")
	n, err := replay(h, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("replayed %d accesses, want 4", n)
	}
	s := h.LevelStats(0)
	if s.Reads != 2 || s.Writes != 2 {
		t.Errorf("L1 saw %d reads %d writes, want 2/2", s.Reads, s.Writes)
	}
}

func TestReplayRejectsMalformedLines(t *testing.T) {
	h, _ := sim.NewHierarchy(sim.TableIConfig())
	cases := []string{
		"R\n",           // missing address
		"X 0x10\n",      // unknown kind
		"R 0xzz\n",      // bad hex
		"R 0x1 extra\n", // too many fields
	}
	for _, in := range cases {
		if _, err := replay(h, strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", strings.TrimSpace(in))
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	in := strings.NewReader("R 0x1000\nW 0x1000\nR 0x200000\n")
	var out strings.Builder
	if err := run([]string{"-copies", "8", "-bench", "leela"}, in, &out); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	for _, want := range []string{"L1D", "LLC", "memory", "extrapolated", "reads/s"} {
		if !strings.Contains(o, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunWithoutBenchSkipsExtrapolation(t *testing.T) {
	in := strings.NewReader("R 0x1000\n")
	var out strings.Builder
	if err := run(nil, in, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "extrapolated") {
		t.Error("extrapolation should require -bench")
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	in := strings.NewReader("R 0x1000\n")
	var out strings.Builder
	if err := run([]string{"-bench", "doom"}, in, &out); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestRunRejectsMissingTraceFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trace", "/nonexistent/file"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing trace file should fail")
	}
}

// TestReplayParserHardening is the table-driven parser contract: CRLF
// line endings, 0X prefixes, and lowercase kinds are accepted; oversized
// addresses and malformed lines are rejected with line-numbered errors.
func TestReplayParserHardening(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantN   int
		wantErr string
	}{
		{"upper hex prefix", "R 0X1000\nW 0X2000\n", 2, ""},
		{"crlf endings", "R 0x1000\r\nW 0x2000\r\n", 2, ""},
		{"bare hex", "R 1000\n", 1, ""},
		{"max width address", "R 0x" + strings.Repeat("f", 16) + "\n", 1, ""},
		{"oversized address", "R 0x1000\nR 0x2000\nR 0x1" + strings.Repeat("0", 16) + "\n", 2, "line 3"},
		{"oversized via zeros", "R 0x" + strings.Repeat("f", 17) + "\n", 0, "16 hex digits"},
		{"missing address", "R\n", 0, "line 1"},
		{"unknown kind", "X 0x10\n", 0, "unknown access kind"},
		{"bad hex", "R 0xzz\n", 0, "line 1"},
		{"comment lines count", "# one\n# two\nR 0xzz\n", 0, "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := sim.NewHierarchy(sim.TableIConfig())
			if err != nil {
				t.Fatal(err)
			}
			n, err := replay(h, strings.NewReader(tc.in))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
			if n != tc.wantN {
				t.Errorf("replayed %d accesses, want %d", n, tc.wantN)
			}
		})
	}
}

// TestRunBinaryAutodetect: the same accesses as .ctrace bytes produce the
// same per-level table as the text form.
func TestRunBinaryAutodetect(t *testing.T) {
	accesses := []trace.Access{
		{Addr: 0x1000}, {Addr: 0x1000, Write: true}, {Addr: 0x200000}, {Addr: 0x340000},
	}
	var text bytes.Buffer
	if err := trace.WriteText(&text, accesses); err != nil {
		t.Fatal(err)
	}
	var fromText, fromBinary strings.Builder
	if err := run(nil, &text, &fromText); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, bytes.NewReader(trace.EncodeBinary(accesses)), &fromBinary); err != nil {
		t.Fatal(err)
	}
	if fromText.String() != fromBinary.String() {
		t.Errorf("text and binary replays diverge:\n%s\nvs\n%s", fromText.String(), fromBinary.String())
	}
}

// TestRunShardedMatchesSerial: -shards changes wall-clock, never counters.
func TestRunShardedMatchesSerial(t *testing.T) {
	g, err := trace.NewZipf(trace.Region{Base: 1 << 28, Size: 16 << 20}, 1.3, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	payload := trace.EncodeBinary(trace.Collect(g, 20000))
	var serial, sharded strings.Builder
	if err := run([]string{"-shards", "1"}, bytes.NewReader(payload), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-shards", "16", "-workers", "4"}, bytes.NewReader(payload), &sharded); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Error("sharded replay diverged from serial")
	}
	var bad strings.Builder
	if err := run([]string{"-shards", "3"}, bytes.NewReader(payload), &bad); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
}

// TestRunDumpWritesCanonicalBinary: -dump converts text to the canonical
// .ctrace encoding while simulating.
func TestRunDumpWritesCanonicalBinary(t *testing.T) {
	accesses := []trace.Access{{Addr: 0x40}, {Addr: 0x80, Write: true}, {Addr: 0xc0}}
	var text bytes.Buffer
	if err := trace.WriteText(&text, accesses); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.ctrace")
	var out strings.Builder
	if err := run([]string{"-dump", path}, &text, &out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, trace.EncodeBinary(accesses)) {
		t.Error("dumped bytes are not the canonical encoding")
	}
	if !strings.Contains(out.String(), "3 accesses") {
		t.Errorf("simulation output missing access count: %s", out.String())
	}
}
