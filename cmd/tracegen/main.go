// Command tracegen emits a synthetic memory-access trace for one of the 23
// SPECrate 2017 benchmark stand-ins (or a raw generator), either as text —
// one "R 0x<addr>" or "W 0x<addr>" per line — or as the compact .ctrace
// binary format (-format binary). The output feeds llcsim (which
// autodetects either format), POST /v1/workloads, or any external cache
// simulator.
//
//	tracegen -bench mcf -n 100000 -seed 42
//	tracegen -pattern stream -ws 64MiB -writefrac 0.3 -n 1000
//	tracegen -bench mcf -n 1000000 -format binary > mcf.ctrace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"coldtall/internal/trace"
	"coldtall/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark profile name (e.g. mcf, povray); empty for -pattern mode")
	pattern := fs.String("pattern", "chase", "raw mode: stream, chase, chain, or zipf")
	ws := fs.String("ws", "64MiB", "raw mode: working set size (e.g. 512KiB, 64MiB)")
	writeFrac := fs.Float64("writefrac", 0.3, "raw mode: store fraction")
	skew := fs.Float64("skew", 1.4, "raw mode: zipf skew (>1)")
	n := fs.Int("n", 100000, "number of accesses to emit")
	seed := fs.Int64("seed", 1, "PRNG seed")
	format := fs.String("format", "text", "output format: text or binary (.ctrace)")
	list := fs.Bool("list", false, "list available benchmark profiles and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range workload.Profiles() {
			fmt.Fprintf(out, "%-12s %-8s %s\n", p.Name, p.Suite, p.Description)
		}
		return nil
	}

	var gen trace.Generator
	var err error
	if *bench != "" {
		p, perr := workload.ProfileByName(*bench)
		if perr != nil {
			return perr
		}
		gen, err = p.Generator(*seed)
	} else {
		size, perr := parseSize(*ws)
		if perr != nil {
			return perr
		}
		region := trace.Region{Base: 1 << 30, Size: size}
		switch *pattern {
		case "stream":
			gen, err = trace.NewStream(region, 1, *writeFrac, *seed)
		case "chase":
			gen, err = trace.NewPointerChase(region, *writeFrac, *seed)
		case "zipf":
			gen, err = trace.NewZipf(region, *skew, *writeFrac, *seed)
		case "chain":
			gen, err = trace.NewChain(region, *writeFrac, *seed)
		default:
			return fmt.Errorf("unknown pattern %q", *pattern)
		}
	}
	if err != nil {
		return err
	}

	switch *format {
	case "text":
		w := bufio.NewWriter(out)
		defer w.Flush()
		var line []byte
		for i := 0; i < *n; i++ {
			line = trace.AppendText(line[:0], gen.Next())
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
		return nil
	case "binary":
		w := trace.NewBinaryWriter(out)
		for i := 0; i < *n; i++ {
			if err := w.Write(gen.Next()); err != nil {
				return err
			}
		}
		return w.Close()
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", *format)
	}
}

// parseSize accepts "4096", "512KiB", "64MiB", "2GiB".
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	if v == 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	if v > (1<<62)/mult {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return v * mult, nil
}
