package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"coldtall/internal/trace"
)

func TestParseSize(t *testing.T) {
	cases := map[string]uint64{
		"4096":   4096,
		"512KiB": 512 << 10,
		"64MiB":  64 << 20,
		"2GiB":   2 << 30,
		" 8 KiB": 8 << 10, // surrounding whitespace is tolerated
		"1TiB":   0,       // unknown suffix leaves a non-numeric string
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if want == 0 {
			if err == nil {
				t.Errorf("parseSize(%q) should fail", in)
			}
			continue
		}
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := parseSize("abcMiB"); err == nil {
		t.Error("non-numeric size should fail")
	}
}

func TestRunListsProfiles(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	if err := run([]string{"-bench", "doom", "-n", "1"}, io.Discard); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestRunRejectsUnknownPattern(t *testing.T) {
	if err := run([]string{"-pattern", "spiral", "-n", "1"}, io.Discard); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestRunEmitsBenchTrace(t *testing.T) {
	if err := run([]string{"-bench", "leela", "-n", "10"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunEmitsRawPatterns(t *testing.T) {
	for _, p := range []string{"stream", "chase", "zipf"} {
		if err := run([]string{"-pattern", p, "-ws", "1MiB", "-n", "5"}, io.Discard); err != nil {
			t.Errorf("pattern %s: %v", p, err)
		}
	}
}

func TestRunEmitsParsableLines(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-pattern", "chain", "-ws", "1MiB", "-n", "20"}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("emitted %d lines, want 20", len(lines))
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 2 || (fields[0] != "R" && fields[0] != "W") || !strings.HasPrefix(fields[1], "0x") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

// TestBinaryFormatMatchesText: -format binary emits the canonical .ctrace
// encoding of exactly the accesses the text mode prints.
func TestBinaryFormatMatchesText(t *testing.T) {
	var text, binary bytes.Buffer
	if err := run([]string{"-bench", "mcf", "-n", "2000", "-seed", "3"}, &text); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "mcf", "-n", "2000", "-seed", "3", "-format", "binary"}, &binary); err != nil {
		t.Fatal(err)
	}
	fromText, err := trace.ReadAll(trace.NewReader(bytes.NewReader(text.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	fromBinary, err := trace.ReadAll(trace.NewReader(bytes.NewReader(binary.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromText) != 2000 || len(fromText) != len(fromBinary) {
		t.Fatalf("decoded %d text / %d binary accesses", len(fromText), len(fromBinary))
	}
	for i := range fromText {
		if fromText[i] != fromBinary[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, fromText[i], fromBinary[i])
		}
	}
	if !bytes.Equal(binary.Bytes(), trace.EncodeBinary(fromText)) {
		t.Error("-format binary output is not the canonical encoding")
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "10", "-format", "xml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}
