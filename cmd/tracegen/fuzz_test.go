package main

import "testing"

// FuzzParseSize hardens the size parser: any string must parse to a
// positive size or error — never panic, never overflow to zero.
func FuzzParseSize(f *testing.F) {
	f.Add("64MiB")
	f.Add("512KiB")
	f.Add("2GiB")
	f.Add("4096")
	f.Add("MiB")
	f.Add("-1KiB")
	f.Add("999999999999GiB")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := parseSize(input)
		if err != nil {
			return
		}
		if v == 0 {
			t.Fatalf("parseSize(%q) = 0 without error", input)
		}
	})
}
