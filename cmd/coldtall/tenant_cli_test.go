package main

// CLI tests for the multi-tenant surface: the openapi subcommand, the
// -api-key bearer passthrough, jobs watch (SSE) and the jobs list
// filter/pagination flags — all against a real server on an httptest
// listener.

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coldtall/internal/server"
)

// TestOpenAPISubcommand pins the drift-free contract end to end: the
// offline `coldtall openapi` bytes equal the running server's
// /v1/openapi.json answer.
func TestOpenAPISubcommand(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"openapi"}, &b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), string(server.OpenAPIJSON()); got != want {
		t.Error("openapi subcommand output differs from server.OpenAPIJSON()")
	}
	if !strings.Contains(b.String(), `"openapi": "3.0.3"`) {
		t.Errorf("output is not an OpenAPI document: %.80s", b.String())
	}

	url := startJobServer(t)
	resp, err := http.Get(url + "/v1/openapi.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != b.String() {
		t.Error("served /v1/openapi.json differs from the CLI's openapi output")
	}
}

// TestJobsAPIKeyAuth drives -api-key through the client: a wrong key is
// the server's 401, the configured key lists cleanly.
func TestJobsAPIKeyAuth(t *testing.T) {
	tenants := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(tenants, []byte(`{"tenants":[{"name":"alice","key":"alice-key-1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	url := startJobServerCfg(t, server.Config{TenantsFile: tenants})

	var b strings.Builder
	err := run(bg, []string{"jobs", "-server", url, "-api-key", "wrong-key", "list"}, &b)
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("wrong key: err = %v, want the server's 401", err)
	}
	b.Reset()
	if err := run(bg, []string{"jobs", "-server", url, "-api-key", "alice-key-1", "list"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no jobs") {
		t.Errorf("keyed list output = %q", b.String())
	}
}

// TestJobsWatchMatchesWait is the CLI half of the streaming byte-identity
// contract: watch's stdout equals wait's stdout for the same job.
func TestJobsWatchMatchesWait(t *testing.T) {
	url := startJobServer(t)

	var sub strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "submit", "table1"}, &sub); err != nil {
		t.Fatal(err)
	}
	id := jobID(t, sub.String())

	var watched strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "watch", id}, &watched); err != nil {
		t.Fatal(err)
	}
	var waited strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "-poll", "10ms", "wait", id}, &waited); err != nil {
		t.Fatal(err)
	}
	if watched.String() != waited.String() {
		t.Errorf("watch stdout differs from wait stdout:\nwatch: %.120q\nwait:  %.120q", watched.String(), waited.String())
	}
	if !strings.HasPrefix(watched.String(), "parameter,value\n") {
		t.Errorf("watch output is not the table1 CSV: %.60q", watched.String())
	}

	// watch without an ID follows the id-taking contract.
	var b strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "watch"}, &b); err == nil || !strings.Contains(err.Error(), "job ID is required") {
		t.Errorf("watch without an ID: err = %v", err)
	}
}

// TestJobsListFlags drives -state, -limit and -cursor through the CLI.
func TestJobsListFlags(t *testing.T) {
	url := startJobServer(t)
	var ids []string
	for _, artifact := range []string{"table1", "fig1"} {
		var sub strings.Builder
		if err := run(bg, []string{"jobs", "-server", url, "submit", artifact}, &sub); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jobID(t, sub.String()))
	}
	for _, id := range ids {
		var res strings.Builder
		if err := run(bg, []string{"jobs", "-server", url, "-poll", "10ms", "wait", id}, &res); err != nil {
			t.Fatal(err)
		}
	}

	var page1 strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "-state", "done", "-limit", "1", "list"}, &page1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(page1.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "next page: -cursor ") {
		t.Fatalf("page 1 = %q, want one job line and a cursor footer", page1.String())
	}
	cursor := strings.TrimPrefix(lines[1], "next page: -cursor ")

	var page2 strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "-limit", "1", "-cursor", cursor, "list"}, &page2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(page2.String(), "next page:") {
		t.Errorf("final page still advertises a cursor: %q", page2.String())
	}
	if jobID(t, page2.String()) == jobID(t, page1.String()) {
		t.Error("pages overlap")
	}

	var none strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "-state", "failed", "list"}, &none); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(none.String(), "no jobs") {
		t.Errorf("-state failed output = %q", none.String())
	}
	// A bogus state surfaces the server's 400.
	var b strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "-state", "bogus", "list"}, &b); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("-state bogus: err = %v, want the server's 400", err)
	}
}
