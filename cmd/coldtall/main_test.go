package main

import (
	"context"
	"strings"
	"testing"

	"coldtall"
)

// bg shortens the background context the CLI tests thread through run.
var bg = context.Background()

func TestRunRequiresSubcommand(t *testing.T) {
	var b strings.Builder
	if err := run(bg, nil, &b); err == nil {
		t.Error("missing subcommand should error")
	}
}

// TestRunUnknownSubcommandNamesIt pins the error contract: the message
// carries the offending subcommand verbatim, with no double-wrapping.
func TestRunUnknownSubcommandNamesIt(t *testing.T) {
	var b strings.Builder
	err := run(bg, []string{"nope"}, &b)
	if err == nil {
		t.Fatal("unknown subcommand should error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown subcommand "nope"`) {
		t.Errorf("error %q does not name the subcommand", msg)
	}
	if strings.HasPrefix(msg, "nope: ") {
		t.Errorf("error %q is double-wrapped with the subcommand prefix", msg)
	}
}

// TestRunBadFlagNamesSubcommandAndFlag pins the other half of the error
// contract: a flag failure says which subcommand was being parsed and
// which flag broke.
func TestRunBadFlagNamesSubcommandAndFlag(t *testing.T) {
	var b strings.Builder
	err := run(bg, []string{"fig1", "-bogus"}, &b)
	if err == nil {
		t.Fatal("undefined flag should error")
	}
	msg := err.Error()
	for _, want := range []string{"fig1", "parsing flags", "-bogus"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestRunRejectsBadCooler(t *testing.T) {
	var b strings.Builder
	err := run(bg, []string{"fig1", "-cooler", "5W"}, &b)
	if err == nil {
		t.Fatal("unknown cooler should error")
	}
	msg := err.Error()
	for _, want := range []string{"fig1", "-cooler", `"5W"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestRunEvalWithoutConfigNamesFlag(t *testing.T) {
	var b strings.Builder
	err := run(bg, []string{"eval"}, &b)
	if err == nil {
		t.Fatal("eval without -config should error")
	}
	if msg := err.Error(); !strings.Contains(msg, "eval") || !strings.Contains(msg, "-config") {
		t.Errorf("error %q should name the subcommand and the missing flag", msg)
	}
}

func TestParseCooler(t *testing.T) {
	for _, name := range []string{"100kW", "1kW", "100W", "10W"} {
		c, err := parseCooler(name)
		if err != nil {
			t.Errorf("parseCooler(%s): %v", name, err)
		}
		if c.ThresholdK != 200 {
			t.Errorf("cooler threshold = %g, want 200", c.ThresholdK)
		}
	}
	if _, err := parseCooler("77K"); err == nil {
		t.Error("bad cooler name should error")
	}
}

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"table1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "5 GHz", "shared 16 MiB, 16 ways"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunFig1(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"fig1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig. 1") || !strings.Contains(b.String(), "387") {
		t.Errorf("fig1 output incomplete: %q", b.String()[:80])
	}
}

// TestRunWorkersFlag pins the CLI determinism contract: the same artifact
// rendered serially and with a forced worker pool is byte-identical.
func TestRunWorkersFlag(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run(bg, []string{"fig1", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(bg, []string{"fig1", "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Error("fig1 output differs between -workers 1 and -workers 8")
	}
}

// TestRunCancelledContextAborts pins the satellite contract: a dead signal
// context aborts a sweep-backed subcommand instead of running it out.
func TestRunCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	err := run(ctx, []string{"fig1"}, &b)
	if err == nil {
		t.Fatal("cancelled context should abort the sweep")
	}
	if !strings.Contains(err.Error(), "cancel") {
		t.Errorf("error %q should mention cancellation", err)
	}
}

func TestRunSweep(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"sweep", "-cell", "PCM", "-corner", "optimistic", "-dies", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"read latency", "footprint/die", "organization", "mm2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in sweep output", want)
		}
	}
}

func TestRunSweepEDRAMAt77K(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"sweep", "-cell", "3T-eDRAM", "-temp", "77"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "refresh power") {
		t.Error("eDRAM sweep should report refresh power")
	}
}

func TestRunSweepRejectsBadInputs(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"sweep", "-cell", "FLUX"}, &b); err == nil {
		t.Error("unknown cell should error")
	}
	if err := run(bg, []string{"sweep", "-cell", "PCM", "-corner", "middling"}, &b); err == nil {
		t.Error("unknown corner should error")
	}
	if err := run(bg, []string{"sweep", "-dies", "3"}, &b); err == nil {
		t.Error("3 dies should error")
	}
}

// TestRunArtifactsList pins the catalog subcommand: every registry
// artifact appears by name with its export file, and the row order is the
// registry's paper order.
func TestRunArtifactsList(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"artifacts", "list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range coldtall.Artifacts().Names() {
		if !strings.Contains(out, name) {
			t.Errorf("catalog missing artifact %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "fig1.csv") || !strings.Contains(out, "Table II") {
		t.Errorf("catalog missing file or paper mapping:\n%s", out)
	}
	// Bare `artifacts` is the same listing.
	var bare strings.Builder
	if err := run(bg, []string{"artifacts"}, &bare); err != nil {
		t.Fatal(err)
	}
	if bare.String() != out {
		t.Error("`artifacts` and `artifacts list` differ")
	}
}

// TestRunArtifactsCSV pins `artifacts <name> -format csv` as the export
// path: the streamed bytes are RenderArtifactCSV's, header first.
func TestRunArtifactsCSV(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"artifacts", "-format", "csv", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "parameter,value\n") {
		t.Errorf("CSV output does not start with the header: %q", b.String())
	}
}

func TestRunArtifactsRejectsBadInputs(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"artifacts", "fig2"}, &b); err == nil {
		t.Error("unknown artifact should error")
	}
	err := run(bg, []string{"artifacts", "-format", "xml", "fig1"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-format") {
		t.Errorf("bad format error should name the flag, got %v", err)
	}
}

// TestRunRegistryNameDispatch pins the generic dispatch: every registry
// name is a subcommand, including the extension artifacts that used to
// have bespoke renderers.
func TestRunRegistryNameDispatch(t *testing.T) {
	var b strings.Builder
	if err := run(bg, []string{"cooling"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cooler", "rel_total_power"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("cooling output missing %q", want)
		}
	}
}
