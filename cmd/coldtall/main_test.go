package main

import (
	"strings"
	"testing"
)

func TestRunRequiresSubcommand(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("missing subcommand should error")
	}
	if err := run([]string{"nope"}, &b); err == nil {
		t.Error("unknown subcommand should error")
	}
}

func TestRunRejectsBadCooler(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig1", "-cooler", "5W"}, &b); err == nil {
		t.Error("unknown cooler should error")
	}
}

func TestParseCooler(t *testing.T) {
	for _, name := range []string{"100kW", "1kW", "100W", "10W"} {
		c, err := parseCooler(name)
		if err != nil {
			t.Errorf("parseCooler(%s): %v", name, err)
		}
		if c.ThresholdK != 200 {
			t.Errorf("cooler threshold = %g, want 200", c.ThresholdK)
		}
	}
	if _, err := parseCooler("77K"); err == nil {
		t.Error("bad cooler name should error")
	}
}

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"table1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "5 GHz", "shared 16 MiB, 16 ways"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunFig1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig. 1") || !strings.Contains(b.String(), "387") {
		t.Errorf("fig1 output incomplete: %q", b.String()[:80])
	}
}

// TestRunWorkersFlag pins the CLI determinism contract: the same artifact
// rendered serially and with a forced worker pool is byte-identical.
func TestRunWorkersFlag(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run([]string{"fig1", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fig1", "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Error("fig1 output differs between -workers 1 and -workers 8")
	}
}

func TestRunSweep(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"sweep", "-cell", "PCM", "-corner", "optimistic", "-dies", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"read latency", "footprint/die", "organization", "mm2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in sweep output", want)
		}
	}
}

func TestRunSweepEDRAMAt77K(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"sweep", "-cell", "3T-eDRAM", "-temp", "77"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "refresh power") {
		t.Error("eDRAM sweep should report refresh power")
	}
}

func TestRunSweepRejectsBadInputs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"sweep", "-cell", "FLUX"}, &b); err == nil {
		t.Error("unknown cell should error")
	}
	if err := run([]string{"sweep", "-cell", "PCM", "-corner", "middling"}, &b); err == nil {
		t.Error("unknown corner should error")
	}
	if err := run([]string{"sweep", "-dies", "3"}, &b); err == nil {
		t.Error("3 dies should error")
	}
}
