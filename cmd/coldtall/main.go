// Command coldtall regenerates the paper's evaluation artifacts from the
// command line:
//
//	coldtall fig1|fig3|fig4|fig5|fig6|fig7   # figures (tables + ASCII plots)
//	coldtall table1|table2                   # tables
//	coldtall cooling                         # Sec. III-C sensitivity
//	coldtall all                             # everything, in paper order
//	coldtall verify                          # re-evaluate every paper claim
//
// Extension studies:
//
//	coldtall coldtall      # Sec. VI: combined cryogenic + 3D
//	coldtall reliability   # SECDED FIT / wear-out / retention tails
//	coldtall exclusions    # why 1T1C-eDRAM and SOT-RAM sit out
//	coldtall impact        # cross-stack AMAT / IPC consequences
//	coldtall nodes         # the verdict on 45nm and 16nm
//	coldtall survey        # every survey datapoint vs the tentpoles
//	coldtall thermal       # Sec. V-A self-consistent operating points
//	coldtall traffic       # simulated vs static traffic calibration
//	coldtall techaxes      # gain-cell, sub-77K and frequency extension sweeps
//	coldtall gaincell|deepcryo|freqsweep   # the same, one registry artifact each
//
// Artifact registry (the declarative catalog behind figures, tables, CSV
// export and the HTTP /v1/artifacts API — see internal/artifact):
//
//	coldtall artifacts list               # name, file, paper mapping, columns
//	coldtall artifacts fig5               # render any artifact by name
//	coldtall artifacts -format csv cooling
//
// Tools:
//
//	coldtall sweep -cell PCM -corner optimistic -dies 8 -temp 350
//	coldtall sweep -cell OS-GC -style monolithic -dies 4 -temp 4
//	coldtall sweep -cell SRAM -temp 77 -freq 10e9
//	coldtall pareto -cell STT-RAM -dies 8
//	coldtall eval -config study.json
//	coldtall export -dir out
//	coldtall serve -addr :8080       # HTTP DSE service (see internal/server)
//	coldtall serve -store-dir /var/coldtall  # + persistent store, warm restarts
//	coldtall serve -coordinator      # + distributed execution coordinator
//	coldtall worker -server http://host:8080  # stateless cluster worker replica
//
// Async jobs (against a running serve instance):
//
//	coldtall jobs list
//	coldtall jobs list -state done -limit 10      # filter + paginate
//	coldtall jobs submit table2      # artifact name, spec file, or - (stdin)
//	coldtall jobs status <id>
//	coldtall jobs wait <id> > out.csv
//	coldtall jobs watch <id> > out.csv   # live SSE progress on stderr
//	coldtall jobs cancel <id>
//
// Custom workloads (against a running serve instance):
//
//	coldtall workloads list             # catalog: 23 SPEC entries + ingested
//	coldtall workloads add spec.json    # ingest a generator spec or .ctrace
//	coldtall workloads add -            # ... or read the spec from stdin
//	coldtall workloads traffic <name>   # derived LLC reads/s and writes/s
//
// Multi-tenant serving (see internal/tenant):
//
//	coldtall serve -tenants tenants.json      # API keys, budgets, fair share
//	coldtall serve -default-quota 100000      # anonymous budget (evals/window)
//	coldtall openapi > openapi.json           # the served /v1/openapi.json bytes
//	coldtall jobs -api-key $KEY submit table2 # authenticate as a tenant
//
// Flags:
//
//	-cooler 100kW|1kW|100W|10W   cryocooler class (default 100kW)
//	-plot=false                  suppress ASCII scatter plots
//	-workers N                   sweep worker pool size (0 = one per CPU,
//	                             1 = serial; outputs identical either way)
//	-addr, -cache-size, -timeout serve: listen address, response cache
//	                             entries, per-request compute deadline
//	-store-dir, -job-workers     serve: result-store directory (enables
//	                             checkpointed jobs + warm restarts), job pool
//	-tenants, -default-quota     serve: tenant config file (SIGHUP reloads),
//	                             default per-tenant eval budget
//	-server, -poll               jobs/workloads: serve base URL, poll interval
//	-api-key                     jobs/workloads: tenant API key (bearer auth)
//	-state, -limit, -cursor      jobs list: state filter + pagination
//
// SIGINT/SIGTERM cancel in-flight sweeps; serve drains gracefully, flushing
// live job streams first. SIGHUP reloads the -tenants file in place.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coldtall"
	"coldtall/internal/array"
	"coldtall/internal/cryo"
	"coldtall/internal/explorer"
	"coldtall/internal/report"
	"coldtall/internal/server"
	"coldtall/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coldtall:", err)
		os.Exit(1)
	}
}

// errUnknownSubcommand marks a dispatch miss; run surfaces it unwrapped
// (the message already names the offending subcommand).
var errUnknownSubcommand = errors.New("unknown subcommand")

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("coldtall", flag.ContinueOnError)
	cooler := fs.String("cooler", "100kW", "cryocooler class: 100kW, 1kW, 100W, 10W")
	plot := fs.Bool("plot", true, "render ASCII scatter plots for fig5/fig7")
	workers := fs.Int("workers", 0, "sweep worker pool size: 0 = one per CPU, 1 = serial")
	outDir := fs.String("dir", "out", "export: output directory for CSV files")
	configPath := fs.String("config", "", "eval: path to a JSON study config")
	cellName := fs.String("cell", "SRAM", "sweep: cell technology (SRAM, 3T-eDRAM, PCM, STT-RAM, RRAM, SOT-RAM, OS-GC)")
	corner := fs.String("corner", "optimistic", "sweep: tentpole corner for eNVMs and the OS gain cell")
	dies := fs.Int("dies", 1, "sweep: stacked die count (1, 2, 4, 8)")
	temp := fs.Float64("temp", 350, "sweep: operating temperature in kelvin (4-400)")
	style := fs.String("style", "", "sweep: 3D integration style (tsv, face-to-face, monolithic; empty = tsv)")
	freq := fs.Float64("freq", 0, "sweep: core clock in Hz (0 = the Table I 5 GHz)")
	addr := fs.String("addr", ":8080", "serve: listen address")
	cacheSize := fs.Int("cache-size", 1024, "serve: response cache capacity in entries")
	timeout := fs.Duration("timeout", 60*time.Second, "serve: per-request compute deadline")
	storeDir := fs.String("store-dir", "", "serve: persistent result-store directory (empty = in-memory only)")
	jobWorkers := fs.Int("job-workers", 0, "serve: async job worker pool size (0 = one per CPU)")
	jobConcurrency := fs.Int("job-concurrency", 0, "serve: async jobs executing at once (0 = default 2); excess queues by priority and fair share")
	schedMode := fs.String("scheduler", "", "serve: job dispatch order: fair (priority + weighted fair share, the default) or fifo")
	serverURL := fs.String("server", "http://localhost:8080", "jobs/worker: base URL of a running serve instance")
	poll := fs.Duration("poll", 250*time.Millisecond, "jobs wait / worker: status or lease poll interval")
	format := fs.String("format", "table", "artifacts: output format (table, csv)")
	coordinator := fs.Bool("coordinator", false, "serve: enable the distributed-execution coordinator (/v1/cluster routes)")
	workerToken := fs.String("worker-token", "", "serve/worker: shared auth token for the /v1/cluster surface")
	leaseTTL := fs.Duration("lease-ttl", 0, "serve: coordinator lease TTL before expiry+requeue (0 = default 30s)")
	leaseUnits := fs.Int("lease-units", 0, "serve: max grid points per lease (0 = auto: whole families on one core)")
	workerName := fs.String("name", "", "worker: stable display name reported to the coordinator")
	throttle := fs.Duration("throttle", 0, "worker: sleep before each unit evaluation (testing/demo)")
	tenantsFile := fs.String("tenants", "", "serve: tenant config file with API keys, limits and weights (SIGHUP reloads)")
	defaultQuota := fs.Int64("default-quota", 0, "serve: default per-tenant compute budget in design-point evaluations per window (0 = unlimited)")
	apiKey := fs.String("api-key", "", "jobs/workloads: tenant API key, sent as a bearer token")
	jobState := fs.String("state", "", "jobs list: filter by state (queued, running, done, failed, cancelled)")
	jobLimit := fs.Int("limit", 0, "jobs list: page size (0 = everything)")
	jobCursor := fs.String("cursor", "", "jobs list: resume after this job ID (from a previous page)")

	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing subcommand (fig1..fig7, table1, table2, cooling, coldtall, reliability, exclusions, impact, nodes, survey, thermal, traffic, techaxes, gaincell, deepcryo, freqsweep, verify, artifacts, eval, export, sweep, pareto, serve, worker, jobs, workloads, openapi, all)")
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return fmt.Errorf("%s: parsing flags: %w", cmd, err)
	}

	cooling, err := parseCooler(*cooler)
	if err != nil {
		return fmt.Errorf("%s: flag -cooler: %w", cmd, err)
	}
	study, err := coldtall.NewStudyWithCooling(cooling)
	if err != nil {
		return fmt.Errorf("%s: building study: %w", cmd, err)
	}
	study.SetParallelism(*workers)
	// Thread the signal context into every sweep: ctrl-C aborts a running
	// figure or table mid-sweep instead of waiting it out.
	study = study.WithContext(ctx)

	if err := dispatch(ctx, cmd, study, w, cliFlags{
		plot: *plot, outDir: *outDir, configPath: *configPath,
		cellName: *cellName, corner: *corner, dies: *dies, temp: *temp,
		style: *style, freq: *freq,
		addr: *addr, cacheSize: *cacheSize, timeout: *timeout,
		storeDir: *storeDir, jobWorkers: *jobWorkers, jobConcurrency: *jobConcurrency, scheduler: *schedMode,
		server: *serverURL, poll: *poll,
		format: *format, args: positional(fs.Args()),
		coordinator: *coordinator, workerToken: *workerToken,
		leaseTTL: *leaseTTL, leaseUnits: *leaseUnits,
		workerName: *workerName, throttle: *throttle,
		tenantsFile: *tenantsFile, defaultQuota: *defaultQuota,
		apiKey: *apiKey, jobState: *jobState, jobLimit: *jobLimit, jobCursor: *jobCursor,
	}); err != nil {
		if errors.Is(err, errUnknownSubcommand) {
			return err
		}
		return fmt.Errorf("%s: %w", cmd, err)
	}
	return nil
}

// cliFlags carries the parsed flag values into the dispatcher.
type cliFlags struct {
	plot               bool
	outDir, configPath string
	cellName, corner   string
	dies               int
	temp               float64
	style              string
	freq               float64
	addr               string
	cacheSize          int
	timeout            time.Duration
	storeDir           string
	jobWorkers         int
	jobConcurrency     int
	scheduler          string
	server             string
	poll               time.Duration
	format             string
	coordinator        bool
	workerToken        string
	leaseTTL           time.Duration
	leaseUnits         int
	workerName         string
	throttle           time.Duration
	tenantsFile        string
	defaultQuota       int64
	apiKey             string
	jobState           string
	jobLimit           int
	jobCursor          string
	args               positional
}

// positional is the subcommand's non-flag arguments.
type positional []string

// arg returns the i-th positional argument, or "" when absent.
func (p positional) arg(i int) string {
	if i < len(p) {
		return p[i]
	}
	return ""
}

func dispatch(ctx context.Context, cmd string, study *coldtall.Study, w io.Writer, f cliFlags) error {
	switch cmd {
	case "coldtall":
		// The extension studies keep their rich per-benchmark views; their
		// flat grids live in the registry ("coldtall", "reliability").
		return study.RenderColdAndTall(w)
	case "reliability":
		return study.RenderReliability(w)
	case "artifacts":
		return runArtifacts(study, w, f)
	case "exclusions":
		return study.RenderExclusions(w)
	case "impact":
		return study.RenderImpact(w)
	case "nodes":
		return study.RenderNodeScaling(w)
	case "survey":
		return study.RenderSurvey(w)
	case "traffic":
		return renderTrafficCalibration(w)
	case "thermal":
		return study.RenderThermal(w)
	case "techaxes":
		return study.RenderTechAxes(w)
	case "verify":
		return study.RenderVerify(w)
	case "eval":
		if f.configPath == "" {
			return fmt.Errorf("flag -config: a JSON study config path is required")
		}
		fh, err := os.Open(f.configPath)
		if err != nil {
			return fmt.Errorf("flag -config: %w", err)
		}
		defer fh.Close()
		return coldtall.RunConfigAndRender(fh, w)
	case "export":
		if err := study.Export(f.outDir); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote CSV artifacts to %s\n", f.outDir)
		return nil
	case "all":
		// Every registry artifact in paper order, with the extension
		// studies swapped for their rich renderers.
		for _, name := range coldtall.Artifacts().Names() {
			var err error
			switch name {
			case "coldtall":
				err = study.RenderColdAndTall(w)
			case "reliability":
				err = study.RenderReliability(w)
			default:
				err = study.RenderArtifact(w, name, f.plot)
			}
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	case "sweep":
		return sweep(ctx, study, w, f)
	case "pareto":
		return pareto(ctx, w, f)
	case "serve":
		return serveHTTP(ctx, study, w, f)
	case "openapi":
		// The exact bytes a running serve answers at /v1/openapi.json —
		// `make artifactcheck` compares the two, so drift is impossible.
		_, err := w.Write(server.OpenAPIJSON())
		return err
	case "worker":
		return runClusterWorker(ctx, w, f)
	case "jobs":
		return runJobs(ctx, w, f)
	case "workloads":
		return runWorkloads(ctx, w, f)
	default:
		// Any registry artifact is a subcommand: `coldtall fig5`,
		// `coldtall table2`, `coldtall cooling`, ...
		if _, ok := coldtall.Artifacts().Lookup(cmd); ok {
			return study.RenderArtifact(w, cmd, f.plot)
		}
		return fmt.Errorf("%w %q (run with no arguments for the full list)", errUnknownSubcommand, cmd)
	}
}

// runArtifacts implements the artifacts subcommand:
//
//	coldtall artifacts list            # the registry catalog
//	coldtall artifacts <name>          # render one artifact (table + plots)
//	coldtall artifacts -format csv <name>
func runArtifacts(study *coldtall.Study, w io.Writer, f cliFlags) error {
	name := f.args.arg(0)
	if name == "" || name == "list" {
		return renderArtifactList(w)
	}
	switch f.format {
	case "csv":
		return study.RenderArtifactCSV(w, name)
	case "", "table":
		return study.RenderArtifact(w, name, f.plot)
	}
	return fmt.Errorf("flag -format: unknown format %q (want table or csv)", f.format)
}

// renderArtifactList prints the registry catalog: one row per artifact
// with its name, export file, paper mapping and column schema. The first
// column is the contract `make artifactcheck` compares against the served
// /v1/artifacts endpoint.
func renderArtifactList(w io.Writer) error {
	t := report.NewTable("Artifact registry ("+fmt.Sprint(len(coldtall.Artifacts().Names()))+" artifacts)",
		"name", "file", "paper", "columns")
	for _, d := range coldtall.Artifacts().Descriptors() {
		cols := make([]string, len(d.Columns))
		for i, c := range d.Columns {
			cols[i] = c.Name
		}
		t.AddRow(d.Name, d.File, d.Paper, strings.Join(cols, ","))
	}
	return t.Render(w)
}

func parseCooler(s string) (cryo.Cooling, error) {
	for _, c := range cryo.Classes() {
		if c.String() == s {
			return cryo.Cooling{Class: c, ThresholdK: 200}, nil
		}
	}
	return cryo.Cooling{}, fmt.Errorf("unknown cooler class %q", s)
}

// parsePoint assembles the sweep/pareto flags into a validated design
// point via the same PointSpec the HTTP API uses.
func (f cliFlags) parsePoint() (explorer.DesignPoint, error) {
	return explorer.ParsePoint(explorer.PointSpec{
		Cell:         f.cellName,
		Corner:       f.corner,
		Dies:         f.dies,
		TemperatureK: f.temp,
		Style:        f.style,
		FrequencyHz:  f.freq,
	})
}

// serveHTTP runs the HTTP DSE service until the signal context fires, then
// drains. SIGHUP reloads the tenant config in place (key rotation without
// a restart); a broken file keeps the previous tenant set serving.
func serveHTTP(ctx context.Context, study *coldtall.Study, w io.Writer, f cliFlags) error {
	srv, err := server.New(study, server.Config{
		Addr:           f.addr,
		CacheEntries:   f.cacheSize,
		Timeout:        f.timeout,
		StoreDir:       f.storeDir,
		JobWorkers:     f.jobWorkers,
		JobConcurrency: f.jobConcurrency,
		Scheduler:      f.scheduler,
		Coordinator:    f.coordinator,
		WorkerToken:    f.workerToken,
		LeaseTTL:       f.leaseTTL,
		LeaseUnits:     f.leaseUnits,
		TenantsFile:    f.tenantsFile,
		DefaultQuota:   f.defaultQuota,
	})
	if err != nil {
		return err
	}
	if f.tenantsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if err := srv.ReloadTenants(); err != nil {
						fmt.Fprintf(os.Stderr, "coldtall: tenant reload failed (keeping previous set): %v\n", err)
					}
				}
			}
		}()
		fmt.Fprintf(w, "tenancy enabled from %s (SIGHUP to reload)\n", f.tenantsFile)
	}
	if f.coordinator {
		fmt.Fprintf(w, "coordinator enabled: workers pull leases from %s/v1/cluster\n", f.addr)
	}
	if f.storeDir != "" {
		fmt.Fprintf(w, "serving the DSE API on %s, persisting to %s (SIGINT/SIGTERM to drain)\n", f.addr, f.storeDir)
	} else {
		fmt.Fprintf(w, "serving the DSE API on %s (SIGINT/SIGTERM to drain)\n", f.addr)
	}
	return srv.ListenAndServe(ctx)
}

// pareto prints the Pareto-optimal internal organizations of one design
// point across (read latency, mean access energy, footprint) — the design
// space the single-objective search collapses.
func pareto(ctx context.Context, w io.Writer, f cliFlags) error {
	p, err := f.parsePoint()
	if err != nil {
		return err
	}
	front, err := array.ParetoContext(ctx, p.ArrayConfig())
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Pareto front for %s (%d of %d organizations)",
			p.Label, len(front), array.SearchSpaceSize()),
		"organization", "rd lat", "wr lat", "rd E/acc", "wr E/acc", "footprint", "leakage")
	for _, r := range front {
		t.AddRow(r.Org.String(),
			report.Eng(r.ReadLatency, "s"), report.Eng(r.WriteLatency, "s"),
			report.Eng(r.ReadEnergy, "J"), report.Eng(r.WriteEnergy, "J"),
			report.Area(r.FootprintM2), report.Eng(r.LeakagePower, "W"))
	}
	return t.Render(w)
}

// renderTrafficCalibration simulates all 23 benchmark stand-ins and prints
// them against the static (Sniper-substitute) traffic table.
func renderTrafficCalibration(w io.Writer) error {
	measured, err := workload.MeasureAll(400000, 42)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Traffic calibration: simulated stand-ins vs the static (Sniper-substitute) table",
		"benchmark", "static reads/s", "simulated reads/s", "ratio", "static writes/s", "simulated writes/s")
	for _, m := range measured {
		st, err := workload.StaticTrafficFor(m.Benchmark)
		if err != nil {
			return err
		}
		ratio := 0.0
		if st.ReadsPerSec > 0 {
			ratio = m.ReadsPerSec / st.ReadsPerSec
		}
		t.AddRow(m.Benchmark,
			fmt.Sprintf("%.3g", st.ReadsPerSec), fmt.Sprintf("%.3g", m.ReadsPerSec),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.3g", st.WritesPerSec), fmt.Sprintf("%.3g", m.WritesPerSec))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "\n  Bounded-window caveats: sub-1e5-reads/s benchmarks are dominated by\n  statistical noise (a handful of LLC events per window), and writeback\n  traffic lags demand traffic (dirty lines must age out of the L2 first),\n  so low-traffic write columns under-report. High-traffic read rates match\n  the static table within a few percent.")
	return err
}

// sweep characterizes one design point and prints its array-level numbers.
func sweep(ctx context.Context, study *coldtall.Study, w io.Writer, f cliFlags) error {
	p, err := f.parsePoint()
	if err != nil {
		return err
	}
	r, err := study.Explorer().CharacterizeContext(ctx, p)
	if err != nil {
		return err
	}
	t := report.NewTable("Design point characterization: "+p.Label, "metric", "value")
	t.AddRow("organization", r.Org.String())
	t.AddRow("read latency", report.Eng(r.ReadLatency, "s"))
	t.AddRow("write latency", report.Eng(r.WriteLatency, "s"))
	t.AddRow("random cycle", report.Eng(r.RandomCycle, "s"))
	t.AddRow("read energy/access", report.Eng(r.ReadEnergy, "J"))
	t.AddRow("write energy/access", report.Eng(r.WriteEnergy, "J"))
	t.AddRow("leakage power", report.Eng(r.LeakagePower, "W"))
	t.AddRow("refresh power", report.Eng(r.RefreshPower, "W"))
	t.AddRow("footprint/die", report.Area(r.FootprintM2))
	t.AddRow("total silicon", report.Area(r.TotalSiliconM2))
	t.AddRow("array efficiency", fmt.Sprintf("%.2f", r.ArrayEfficiency))
	t.AddRow("bandwidth", report.Eng(r.BandwidthAccesses, "acc/s"))
	return t.Render(w)
}
