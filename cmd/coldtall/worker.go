package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"coldtall/internal/cluster"
)

// runClusterWorker implements the worker subcommand: a stateless replica
// that registers against a `serve -coordinator` instance, pulls leased
// grid ranges, evaluates them, and acks the results until interrupted.
//
//	coldtall serve -coordinator -store-dir /var/coldtall &
//	coldtall worker -server http://localhost:8080 &
//	coldtall worker -server http://localhost:8080 &
func runClusterWorker(ctx context.Context, w io.Writer, f cliFlags) error {
	fmt.Fprintf(w, "worker pulling leases from %s (SIGINT/SIGTERM to stop)\n", f.server)
	err := cluster.RunWorker(ctx, cluster.WorkerOptions{
		Coordinator: f.server,
		Token:       f.workerToken,
		Name:        f.workerName,
		Poll:        f.poll,
		Throttle:    f.throttle,
		Logger:      log.New(os.Stderr, "coldtall-worker ", log.LstdFlags|log.Lmicroseconds),
	})
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
