package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"coldtall/internal/job"
	"coldtall/internal/workload"
)

// runWorkloads implements the workload-ingestion client family against a
// running serve instance:
//
//	coldtall workloads [-server URL] list
//	coldtall workloads [-server URL] add <spec.json|->   # POST + wait, print the record
//	coldtall workloads [-server URL] traffic <name>
//	coldtall workloads [-server URL] sig <name>          # locality signature
//	coldtall workloads [-server URL] similar <name>      # signature-distance ranking
//	coldtall workloads [-server URL] distill <name>      # fit a generator, wait, print the fit
//	coldtall workloads [-server URL] rm <name>
//
// add accepts an ingestion spec (a generator description or a base64
// .ctrace payload — see internal/ingest) from a file or stdin, submits it,
// polls the ingest job to completion, and prints the registered source
// record.
func runWorkloads(ctx context.Context, w io.Writer, f cliFlags) error {
	c := workloadsClient{jobsClient{base: strings.TrimRight(f.server, "/"), key: f.apiKey}}
	verb := f.args.arg(0)
	switch verb {
	case "", "list":
		return c.list(ctx, w)
	case "add":
		return c.add(ctx, w, f.args.arg(1), f.poll)
	case "traffic":
		return c.traffic(ctx, w, f.args.arg(1))
	case "sig":
		return c.sig(ctx, w, f.args.arg(1))
	case "similar":
		return c.similar(ctx, w, f.args.arg(1))
	case "distill":
		return c.distill(ctx, w, f.args.arg(1), f.poll)
	case "rm":
		return c.rm(ctx, w, f.args.arg(1))
	}
	return fmt.Errorf("unknown workloads verb %q (want list, add, traffic, sig, similar, distill, rm)", verb)
}

// workloadsClient speaks the /v1/workloads API, reusing the jobs client
// for the async-submission leg.
type workloadsClient struct {
	jobsClient
}

// getJSON issues one GET and decodes the JSON answer into out; non-2xx
// responses surface the server's error text.
func (c workloadsClient) getJSON(ctx context.Context, path string, out any) error {
	return c.reqJSON(ctx, http.MethodGet, path, out)
}

// reqJSON issues one bodyless request and decodes the JSON answer into
// out; non-2xx responses surface the server's error text.
func (c workloadsClient) reqJSON(ctx context.Context, method, path string, out any) error {
	req, err := c.newRequest(ctx, method, path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(payload)))
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("%s %s: decoding: %w", method, path, err)
	}
	return nil
}

// list prints one line per catalog entry: the 23 static SPEC benchmarks,
// then any ingested workloads.
func (c workloadsClient) list(ctx context.Context, w io.Writer) error {
	var table struct {
		Workloads []workload.Source `json:"workloads"`
	}
	if err := c.getJSON(ctx, "/v1/workloads", &table); err != nil {
		return err
	}
	for _, s := range table.Workloads {
		printSource(w, s)
	}
	return nil
}

// add submits the ingestion spec, waits for its job, and prints the
// registered record.
func (c workloadsClient) add(ctx context.Context, w io.Writer, arg string, poll time.Duration) error {
	if arg == "" {
		return fmt.Errorf("workloads add: a spec file or - (stdin) is required")
	}
	var spec []byte
	var err error
	if arg == "-" {
		if spec, err = io.ReadAll(os.Stdin); err != nil {
			return fmt.Errorf("workloads add: reading stdin: %w", err)
		}
	} else if spec, err = os.ReadFile(arg); err != nil {
		return fmt.Errorf("workloads add: %w", err)
	}
	st, err := c.do(ctx, http.MethodPost, "/v1/workloads", spec)
	if err != nil {
		return err
	}
	for !st.State.Terminal() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
		if st, err = c.do(ctx, http.MethodGet, "/v1/jobs/"+st.ID, nil); err != nil {
			return err
		}
	}
	switch st.State {
	case job.StateDone:
		var src workload.Source
		if err := c.getJSON(ctx, "/v1/workloads/"+st.Workload, &src); err != nil {
			return err
		}
		printSource(w, src)
		return nil
	case job.StateFailed:
		return fmt.Errorf("ingest job %s failed: %s", st.ID, st.Error)
	default:
		return fmt.Errorf("ingest job %s was cancelled", st.ID)
	}
}

// traffic prints one workload's derived continuous-operation LLC rates —
// the numbers the traffic-dependent artifacts plot it by.
func (c workloadsClient) traffic(ctx context.Context, w io.Writer, name string) error {
	if name == "" {
		return fmt.Errorf("workloads traffic: a workload name is required (see `coldtall workloads list`)")
	}
	var src workload.Source
	if err := c.getJSON(ctx, "/v1/workloads/"+name, &src); err != nil {
		return err
	}
	fmt.Fprintf(w, "workload  = %s (%s)\n", src.Name, src.Kind)
	if src.Description != "" {
		fmt.Fprintf(w, "about     = %s\n", src.Description)
	}
	fmt.Fprintf(w, "reads/s   = %.3g\n", src.Traffic.ReadsPerSec)
	fmt.Fprintf(w, "writes/s  = %.3g\n", src.Traffic.WritesPerSec)
	if src.Accesses > 0 {
		fmt.Fprintf(w, "accesses  = %d\n", src.Accesses)
	}
	if src.TraceSHA256 != "" {
		fmt.Fprintf(w, "trace     = sha256:%s\n", src.TraceSHA256)
	}
	return nil
}

// sig prints a workload's locality signature summary — the compact reuse
// and mix statistics the ingestion replay computed while streaming the
// trace. Aliases answer with their canonical workload's signature, with
// the resolution shown.
func (c workloadsClient) sig(ctx context.Context, w io.Writer, name string) error {
	if name == "" {
		return fmt.Errorf("workloads sig: a workload name is required (see `coldtall workloads list`)")
	}
	var resp struct {
		Workload  string `json:"workload"`
		Canonical string `json:"canonical"`
		SHA256    string `json:"sha256"`
		Signature struct {
			Accesses uint64 `json:"accesses"`
		} `json:"signature"`
		ReadFrac       float64 `json:"read_frac"`
		SeqFrac        float64 `json:"seq_frac"`
		FootprintBytes uint64  `json:"footprint_bytes"`
		ReuseP50       uint64  `json:"reuse_p50"`
		ReuseP90       uint64  `json:"reuse_p90"`
	}
	if err := c.getJSON(ctx, "/v1/workloads/"+name+"/signature", &resp); err != nil {
		return err
	}
	fmt.Fprintf(w, "workload  = %s\n", resp.Workload)
	if resp.Canonical != "" {
		fmt.Fprintf(w, "canonical = %s (alias)\n", resp.Canonical)
	}
	fmt.Fprintf(w, "sha256    = %s\n", resp.SHA256)
	fmt.Fprintf(w, "accesses  = %d\n", resp.Signature.Accesses)
	fmt.Fprintf(w, "reads     = %.3f of accesses\n", resp.ReadFrac)
	fmt.Fprintf(w, "seq       = %.3f of accesses\n", resp.SeqFrac)
	fmt.Fprintf(w, "footprint = %d bytes\n", resp.FootprintBytes)
	fmt.Fprintf(w, "reuse p50 = %d distinct blocks\n", resp.ReuseP50)
	fmt.Fprintf(w, "reuse p90 = %d distinct blocks\n", resp.ReuseP90)
	return nil
}

// similar prints the signature-distance ranking of the other registered
// workloads: anything at or under the threshold is what ingest-time dedup
// would have aliased.
func (c workloadsClient) similar(ctx context.Context, w io.Writer, name string) error {
	if name == "" {
		return fmt.Errorf("workloads similar: a workload name is required (see `coldtall workloads list`)")
	}
	var resp struct {
		Workload  string  `json:"workload"`
		Threshold float64 `json:"threshold"`
		Matches   []struct {
			Name     string  `json:"name"`
			Distance float64 `json:"distance"`
		} `json:"matches"`
	}
	if err := c.getJSON(ctx, "/v1/workloads/"+name+"/similar", &resp); err != nil {
		return err
	}
	if len(resp.Matches) == 0 {
		fmt.Fprintf(w, "no other workloads carry a locality signature to compare %s against\n", resp.Workload)
		return nil
	}
	for _, m := range resp.Matches {
		line := fmt.Sprintf("%-16s distance %.4g", m.Name, m.Distance)
		if m.Distance <= resp.Threshold {
			line += "  (within dedup threshold)"
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// distill submits the trace-to-generator distillation job, waits for it,
// and prints the fit: the recovered generator parameters, the relative
// traffic error against the pinned tolerance, and the storage drop when
// the trace bytes were replaced by the spec.
func (c workloadsClient) distill(ctx context.Context, w io.Writer, name string, poll time.Duration) error {
	if name == "" {
		return fmt.Errorf("workloads distill: a workload name is required (see `coldtall workloads list`)")
	}
	st, err := c.do(ctx, http.MethodPost, "/v1/workloads/"+name+"/distill", nil)
	if err != nil {
		return err
	}
	for !st.State.Terminal() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
		if st, err = c.do(ctx, http.MethodGet, "/v1/jobs/"+st.ID, nil); err != nil {
			return err
		}
	}
	switch st.State {
	case job.StateDone:
	case job.StateFailed:
		return fmt.Errorf("distill job %s failed: %s", st.ID, st.Error)
	default:
		return fmt.Errorf("distill job %s was cancelled", st.ID)
	}
	var res struct {
		Workload     string          `json:"workload"`
		Spec         json.RawMessage `json:"spec"`
		RelErr       float64         `json:"rel_err"`
		Tolerance    float64         `json:"tolerance"`
		Accepted     bool            `json:"accepted"`
		Evals        int             `json:"evals"`
		TraceBytes   int             `json:"trace_bytes"`
		SpecBytes    int             `json:"spec_bytes"`
		StorageRatio float64         `json:"storage_ratio"`
		TraceDeleted bool            `json:"trace_deleted"`
	}
	if err := c.getJSON(ctx, "/v1/jobs/"+st.ID+"/result", &res); err != nil {
		return err
	}
	fmt.Fprintf(w, "workload  = %s\n", res.Workload)
	fmt.Fprintf(w, "accepted  = %t (rel err %.4f vs tolerance %.4f, %d evals)\n", res.Accepted, res.RelErr, res.Tolerance, res.Evals)
	if res.TraceBytes > 0 && res.SpecBytes > 0 {
		fmt.Fprintf(w, "storage   = %d -> %d bytes (%.0fx)\n", res.TraceBytes, res.SpecBytes, res.StorageRatio)
	}
	fmt.Fprintf(w, "trace     = deleted %t\n", res.TraceDeleted)
	fmt.Fprintf(w, "spec      = %s\n", res.Spec)
	return nil
}

// rm deletes an ingested workload; the server refuses static names and
// canonical entries that still have aliases (remove the aliases first).
func (c workloadsClient) rm(ctx context.Context, w io.Writer, name string) error {
	if name == "" {
		return fmt.Errorf("workloads rm: a workload name is required (see `coldtall workloads list`)")
	}
	var resp struct {
		Removed         workload.Source `json:"removed"`
		PurgedResponses int             `json:"purged_responses"`
	}
	if err := c.reqJSON(ctx, http.MethodDelete, "/v1/workloads/"+name, &resp); err != nil {
		return err
	}
	fmt.Fprintf(w, "removed %s (%s); purged %d cached responses\n", resp.Removed.Name, resp.Removed.Kind, resp.PurgedResponses)
	return nil
}

// printSource renders one catalog entry as a single parseable line: name
// first, then kind and the derived traffic rates.
func printSource(w io.Writer, s workload.Source) {
	line := fmt.Sprintf("%-16s %-8s reads/s %.3g  writes/s %.3g", s.Name, s.Kind, s.Traffic.ReadsPerSec, s.Traffic.WritesPerSec)
	if s.Kind != workload.SourceStatic && s.Accesses > 0 {
		line += fmt.Sprintf("  (%d accesses)", s.Accesses)
	}
	fmt.Fprintln(w, line)
}
