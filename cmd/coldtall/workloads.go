package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"coldtall/internal/job"
	"coldtall/internal/workload"
)

// runWorkloads implements the workload-ingestion client family against a
// running serve instance:
//
//	coldtall workloads [-server URL] list
//	coldtall workloads [-server URL] add <spec.json|->   # POST + wait, print the record
//	coldtall workloads [-server URL] traffic <name>
//
// add accepts an ingestion spec (a generator description or a base64
// .ctrace payload — see internal/ingest) from a file or stdin, submits it,
// polls the ingest job to completion, and prints the registered source
// record.
func runWorkloads(ctx context.Context, w io.Writer, f cliFlags) error {
	c := workloadsClient{jobsClient{base: strings.TrimRight(f.server, "/"), key: f.apiKey}}
	verb := f.args.arg(0)
	switch verb {
	case "", "list":
		return c.list(ctx, w)
	case "add":
		return c.add(ctx, w, f.args.arg(1), f.poll)
	case "traffic":
		return c.traffic(ctx, w, f.args.arg(1))
	}
	return fmt.Errorf("unknown workloads verb %q (want list, add, traffic)", verb)
}

// workloadsClient speaks the /v1/workloads API, reusing the jobs client
// for the async-submission leg.
type workloadsClient struct {
	jobsClient
}

// getJSON issues one GET and decodes the JSON answer into out; non-2xx
// responses surface the server's error text.
func (c workloadsClient) getJSON(ctx context.Context, path string, out any) error {
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(payload)))
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("GET %s: decoding: %w", path, err)
	}
	return nil
}

// list prints one line per catalog entry: the 23 static SPEC benchmarks,
// then any ingested workloads.
func (c workloadsClient) list(ctx context.Context, w io.Writer) error {
	var table struct {
		Workloads []workload.Source `json:"workloads"`
	}
	if err := c.getJSON(ctx, "/v1/workloads", &table); err != nil {
		return err
	}
	for _, s := range table.Workloads {
		printSource(w, s)
	}
	return nil
}

// add submits the ingestion spec, waits for its job, and prints the
// registered record.
func (c workloadsClient) add(ctx context.Context, w io.Writer, arg string, poll time.Duration) error {
	if arg == "" {
		return fmt.Errorf("workloads add: a spec file or - (stdin) is required")
	}
	var spec []byte
	var err error
	if arg == "-" {
		if spec, err = io.ReadAll(os.Stdin); err != nil {
			return fmt.Errorf("workloads add: reading stdin: %w", err)
		}
	} else if spec, err = os.ReadFile(arg); err != nil {
		return fmt.Errorf("workloads add: %w", err)
	}
	st, err := c.do(ctx, http.MethodPost, "/v1/workloads", spec)
	if err != nil {
		return err
	}
	for !st.State.Terminal() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
		if st, err = c.do(ctx, http.MethodGet, "/v1/jobs/"+st.ID, nil); err != nil {
			return err
		}
	}
	switch st.State {
	case job.StateDone:
		var src workload.Source
		if err := c.getJSON(ctx, "/v1/workloads/"+st.Workload, &src); err != nil {
			return err
		}
		printSource(w, src)
		return nil
	case job.StateFailed:
		return fmt.Errorf("ingest job %s failed: %s", st.ID, st.Error)
	default:
		return fmt.Errorf("ingest job %s was cancelled", st.ID)
	}
}

// traffic prints one workload's derived continuous-operation LLC rates —
// the numbers the traffic-dependent artifacts plot it by.
func (c workloadsClient) traffic(ctx context.Context, w io.Writer, name string) error {
	if name == "" {
		return fmt.Errorf("workloads traffic: a workload name is required (see `coldtall workloads list`)")
	}
	var src workload.Source
	if err := c.getJSON(ctx, "/v1/workloads/"+name, &src); err != nil {
		return err
	}
	fmt.Fprintf(w, "workload  = %s (%s)\n", src.Name, src.Kind)
	if src.Description != "" {
		fmt.Fprintf(w, "about     = %s\n", src.Description)
	}
	fmt.Fprintf(w, "reads/s   = %.3g\n", src.Traffic.ReadsPerSec)
	fmt.Fprintf(w, "writes/s  = %.3g\n", src.Traffic.WritesPerSec)
	if src.Accesses > 0 {
		fmt.Fprintf(w, "accesses  = %d\n", src.Accesses)
	}
	if src.TraceSHA256 != "" {
		fmt.Fprintf(w, "trace     = sha256:%s\n", src.TraceSHA256)
	}
	return nil
}

// printSource renders one catalog entry as a single parseable line: name
// first, then kind and the derived traffic rates.
func printSource(w io.Writer, s workload.Source) {
	line := fmt.Sprintf("%-16s %-8s reads/s %.3g  writes/s %.3g", s.Name, s.Kind, s.Traffic.ReadsPerSec, s.Traffic.WritesPerSec)
	if s.Kind != workload.SourceStatic && s.Accesses > 0 {
		line += fmt.Sprintf("  (%d accesses)", s.Accesses)
	}
	fmt.Fprintln(w, line)
}
