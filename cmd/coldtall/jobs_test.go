package main

// CLI tests for the jobs subcommand family, run against a real server
// mounted on an httptest listener — the same wire format `coldtall serve`
// exposes.

import (
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coldtall"
	"coldtall/internal/server"
)

// startJobServer boots a store-backed server on a real listener and
// returns its base URL.
func startJobServer(t *testing.T) string {
	t.Helper()
	return startJobServerCfg(t, server.Config{})
}

// startJobServerCfg is startJobServer with a caller-supplied config
// (tenant files, quotas); the store dir and quiet logger are filled in.
func startJobServerCfg(t *testing.T, cfg server.Config) string {
	t.Helper()
	study := coldtall.NewStudy()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	cfg.Logger = log.New(io.Discard, "", 0)
	s, err := server.New(study, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Jobs().Close() })
	return ts.URL
}

// jobID pulls the leading job ID out of a printStatus line.
func jobID(t *testing.T, out string) string {
	t.Helper()
	fields := strings.Fields(out)
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "j") {
		t.Fatalf("no job ID in output %q", out)
	}
	return fields[0]
}

func TestJobsSubmitStatusWait(t *testing.T) {
	url := startJobServer(t)

	// submit by artifact name (registry shorthand)
	var sub strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "submit", "table1"}, &sub); err != nil {
		t.Fatal(err)
	}
	id := jobID(t, sub.String())

	var st strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "status", id}, &st); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.String(), id) {
		t.Errorf("status output %q missing job ID", st.String())
	}

	// wait streams the artifact CSV verbatim
	var res strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "-poll", "10ms", "wait", id}, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "parameter,value\n") {
		t.Errorf("wait output is not the table1 CSV: %q", res.String()[:min(len(res.String()), 60)])
	}

	var list strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "list"}, &list); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list.String(), id) || !strings.Contains(list.String(), "done") {
		t.Errorf("list output %q missing the finished job", list.String())
	}
}

func TestJobsSubmitSpecFile(t *testing.T) {
	url := startJobServer(t)
	spec := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(spec, []byte(`{"kind":"sweep","points":[{"cell":"SRAM"}],"benchmarks":["namd"]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var sub strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "submit", spec}, &sub); err != nil {
		t.Fatal(err)
	}
	id := jobID(t, sub.String())

	var res strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "-poll", "10ms", "wait", id}, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), `"benchmark": "namd"`) && !strings.Contains(res.String(), `"benchmark":"namd"`) {
		t.Errorf("sweep result JSON missing the benchmark row: %q", res.String())
	}
}

func TestJobsErrors(t *testing.T) {
	url := startJobServer(t)

	// id-taking verbs demand an ID
	for _, verb := range []string{"status", "wait", "cancel"} {
		var b strings.Builder
		err := run(bg, []string{"jobs", "-server", url, verb}, &b)
		if err == nil || !strings.Contains(err.Error(), "job ID is required") {
			t.Errorf("jobs %s without an ID: err = %v", verb, err)
		}
	}

	// unknown verb names itself
	var b strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "frobnicate"}, &b); err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("unknown verb: err = %v", err)
	}

	// unknown job surfaces the server's 404
	if err := run(bg, []string{"jobs", "-server", url, "status", "jnope"}, &b); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job: err = %v", err)
	}

	// a bad spec surfaces the server's 400
	if err := run(bg, []string{"jobs", "-server", url, "submit", "/nonexistent/spec.json"}, &b); err == nil {
		t.Error("missing spec file should error")
	}

	// empty list renders cleanly
	var list strings.Builder
	if err := run(bg, []string{"jobs", "-server", url, "list"}, &list); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list.String(), "no jobs") {
		t.Errorf("empty list output = %q", list.String())
	}
}
