package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"coldtall"
	"coldtall/internal/job"
)

// runJobs implements the async-job client family against a running serve
// instance:
//
//	coldtall jobs [-server URL] list
//	coldtall jobs [-server URL] submit <artifact|spec.json|->
//	coldtall jobs [-server URL] status <id>
//	coldtall jobs [-server URL] wait <id>     # poll to a terminal state, print the result
//	coldtall jobs [-server URL] cancel <id>
//
// submit accepts either a registry artifact name (shorthand for an
// artifact job), a path to a job-spec JSON file, or "-" for a spec on
// stdin.
func runJobs(ctx context.Context, w io.Writer, f cliFlags) error {
	c := jobsClient{base: strings.TrimRight(f.server, "/")}
	verb := f.args.arg(0)
	switch verb {
	case "", "list":
		return c.list(ctx, w)
	case "submit":
		return c.submit(ctx, w, f.args.arg(1))
	case "status":
		return c.status(ctx, w, f.args.arg(1))
	case "wait":
		return c.wait(ctx, w, f.args.arg(1), f.poll)
	case "cancel":
		return c.cancel(ctx, w, f.args.arg(1))
	}
	return fmt.Errorf("unknown jobs verb %q (want list, submit, status, wait, cancel)", verb)
}

// jobsClient speaks the /v1/jobs API of a running serve instance.
type jobsClient struct {
	base string
}

// do issues one request and decodes the JSON status answer; non-2xx
// responses surface the server's error text.
func (c jobsClient) do(ctx context.Context, method, path string, body []byte) (job.Status, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return job.Status{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return job.Status{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return job.Status{}, err
	}
	if resp.StatusCode >= 300 {
		return job.Status{}, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(payload)))
	}
	var st job.Status
	if err := json.Unmarshal(payload, &st); err != nil {
		return job.Status{}, fmt.Errorf("%s %s: decoding status: %w", method, path, err)
	}
	return st, nil
}

// requireID guards the id-taking verbs against a missing argument.
func requireID(verb, id string) error {
	if id == "" {
		return fmt.Errorf("jobs %s: a job ID is required (see `coldtall jobs list`)", verb)
	}
	return nil
}

func (c jobsClient) list(ctx context.Context, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var table struct {
		Jobs []job.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		return fmt.Errorf("decoding job list: %w", err)
	}
	if len(table.Jobs) == 0 {
		fmt.Fprintln(w, "no jobs")
		return nil
	}
	for _, st := range table.Jobs {
		printStatus(w, st)
	}
	return nil
}

// submit resolves its argument (artifact name, spec file, or "-") into a
// spec payload, posts it, and prints the resulting status line.
func (c jobsClient) submit(ctx context.Context, w io.Writer, arg string) error {
	if arg == "" {
		return fmt.Errorf("jobs submit: an artifact name, a spec file, or - (stdin) is required")
	}
	var spec []byte
	switch {
	case func() bool { _, ok := coldtall.Artifacts().Lookup(arg); return ok }():
		spec = []byte(fmt.Sprintf(`{"kind":"artifact","artifact":%q}`, arg))
	case arg == "-":
		var err error
		if spec, err = io.ReadAll(os.Stdin); err != nil {
			return fmt.Errorf("jobs submit: reading stdin: %w", err)
		}
	default:
		var err error
		if spec, err = os.ReadFile(arg); err != nil {
			return fmt.Errorf("jobs submit: %w", err)
		}
	}
	st, err := c.do(ctx, http.MethodPost, "/v1/jobs", spec)
	if err != nil {
		return err
	}
	printStatus(w, st)
	return nil
}

func (c jobsClient) status(ctx context.Context, w io.Writer, id string) error {
	if err := requireID("status", id); err != nil {
		return err
	}
	st, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	printStatus(w, st)
	return nil
}

// wait polls the job to a terminal state, then streams the result payload
// (sweep JSON or artifact CSV) to w. Failed and cancelled jobs become
// errors so shell pipelines see a non-zero exit.
func (c jobsClient) wait(ctx context.Context, w io.Writer, id string, poll time.Duration) error {
	if err := requireID("wait", id); err != nil {
		return err
	}
	for {
		st, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		if st.State.Terminal() {
			switch st.State {
			case job.StateDone:
				return c.result(ctx, w, id)
			case job.StateFailed:
				return fmt.Errorf("job %s failed: %s", id, st.Error)
			default:
				return fmt.Errorf("job %s was cancelled", id)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// result streams the done job's payload verbatim.
func (c jobsClient) result(ctx context.Context, w io.Writer, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET /v1/jobs/%s/result: %s: %s", id, resp.Status, strings.TrimSpace(string(payload)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func (c jobsClient) cancel(ctx context.Context, w io.Writer, id string) error {
	if err := requireID("cancel", id); err != nil {
		return err
	}
	st, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	printStatus(w, st)
	return nil
}

// printStatus renders one job as a single parseable line: ID first, then
// state, progress, and kind.
func printStatus(w io.Writer, st job.Status) {
	line := fmt.Sprintf("%s  %-9s  %d/%d  %s", st.ID, st.State, st.Done, st.Total, st.Kind)
	if st.Artifact != "" {
		line += " " + st.Artifact
	}
	if st.Resumed > 0 {
		line += fmt.Sprintf("  (resumed %d from checkpoint)", st.Resumed)
	}
	if st.Error != "" {
		line += "  error: " + st.Error
	}
	fmt.Fprintln(w, line)
}
