package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"coldtall"
	"coldtall/internal/job"
)

// runJobs implements the async-job client family against a running serve
// instance:
//
//	coldtall jobs [-server URL] [-api-key KEY] list [-state S] [-limit N] [-cursor ID]
//	coldtall jobs [-server URL] submit <artifact|spec.json|->
//	coldtall jobs [-server URL] status <id>
//	coldtall jobs [-server URL] wait <id>     # poll to a terminal state, print the result
//	coldtall jobs [-server URL] watch <id>    # live SSE progress (stderr), then the result
//	coldtall jobs [-server URL] cancel <id>
//
// submit accepts either a registry artifact name (shorthand for an
// artifact job), a path to a job-spec JSON file, or "-" for a spec on
// stdin. -api-key authenticates every verb as a configured tenant.
func runJobs(ctx context.Context, w io.Writer, f cliFlags) error {
	c := jobsClient{base: strings.TrimRight(f.server, "/"), key: f.apiKey}
	verb := f.args.arg(0)
	switch verb {
	case "", "list":
		return c.list(ctx, w, f)
	case "submit":
		return c.submit(ctx, w, f.args.arg(1))
	case "status":
		return c.status(ctx, w, f.args.arg(1))
	case "wait":
		return c.wait(ctx, w, f.args.arg(1), f.poll)
	case "watch":
		return c.watch(ctx, w, f.args.arg(1))
	case "cancel":
		return c.cancel(ctx, w, f.args.arg(1))
	}
	return fmt.Errorf("unknown jobs verb %q (want list, submit, status, wait, watch, cancel)", verb)
}

// jobsClient speaks the /v1/jobs API of a running serve instance. A
// non-empty key rides along on every request as a bearer token.
type jobsClient struct {
	base string
	key  string
}

// newRequest builds one request against the serve base URL with the
// tenant key attached.
func (c jobsClient) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	return req, nil
}

// do issues one request and decodes the JSON status answer; non-2xx
// responses surface the server's error text.
func (c jobsClient) do(ctx context.Context, method, path string, body []byte) (job.Status, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := c.newRequest(ctx, method, path, rd)
	if err != nil {
		return job.Status{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return job.Status{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return job.Status{}, err
	}
	if resp.StatusCode >= 300 {
		return job.Status{}, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(payload)))
	}
	var st job.Status
	if err := json.Unmarshal(payload, &st); err != nil {
		return job.Status{}, fmt.Errorf("%s %s: decoding status: %w", method, path, err)
	}
	return st, nil
}

// requireID guards the id-taking verbs against a missing argument.
func requireID(verb, id string) error {
	if id == "" {
		return fmt.Errorf("jobs %s: a job ID is required (see `coldtall jobs list`)", verb)
	}
	return nil
}

// list prints the job table, optionally filtered by -state and paged by
// -limit/-cursor. When a page is truncated the footer names the cursor
// that resumes the listing.
func (c jobsClient) list(ctx context.Context, w io.Writer, f cliFlags) error {
	q := url.Values{}
	if f.jobState != "" {
		q.Set("state", f.jobState)
	}
	if f.jobLimit > 0 {
		q.Set("limit", strconv.Itoa(f.jobLimit))
	}
	if f.jobCursor != "" {
		q.Set("cursor", f.jobCursor)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(payload)))
	}
	var table struct {
		Jobs       []job.Status `json:"jobs"`
		NextCursor string       `json:"next_cursor"`
	}
	if err := json.Unmarshal(payload, &table); err != nil {
		return fmt.Errorf("decoding job list: %w", err)
	}
	if len(table.Jobs) == 0 {
		fmt.Fprintln(w, "no jobs")
		return nil
	}
	for _, st := range table.Jobs {
		printStatus(w, st)
	}
	if table.NextCursor != "" {
		fmt.Fprintf(w, "next page: -cursor %s\n", table.NextCursor)
	}
	return nil
}

// submit resolves its argument (artifact name, spec file, or "-") into a
// spec payload, posts it, and prints the resulting status line.
func (c jobsClient) submit(ctx context.Context, w io.Writer, arg string) error {
	if arg == "" {
		return fmt.Errorf("jobs submit: an artifact name, a spec file, or - (stdin) is required")
	}
	var spec []byte
	switch {
	case func() bool { _, ok := coldtall.Artifacts().Lookup(arg); return ok }():
		spec = []byte(fmt.Sprintf(`{"kind":"artifact","artifact":%q}`, arg))
	case arg == "-":
		var err error
		if spec, err = io.ReadAll(os.Stdin); err != nil {
			return fmt.Errorf("jobs submit: reading stdin: %w", err)
		}
	default:
		var err error
		if spec, err = os.ReadFile(arg); err != nil {
			return fmt.Errorf("jobs submit: %w", err)
		}
	}
	st, err := c.do(ctx, http.MethodPost, "/v1/jobs", spec)
	if err != nil {
		return err
	}
	printStatus(w, st)
	return nil
}

func (c jobsClient) status(ctx context.Context, w io.Writer, id string) error {
	if err := requireID("status", id); err != nil {
		return err
	}
	st, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	printStatus(w, st)
	return nil
}

// wait polls the job to a terminal state, then streams the result payload
// (sweep JSON or artifact CSV) to w. Failed and cancelled jobs become
// errors so shell pipelines see a non-zero exit.
func (c jobsClient) wait(ctx context.Context, w io.Writer, id string, poll time.Duration) error {
	if err := requireID("wait", id); err != nil {
		return err
	}
	for {
		st, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		if st.State.Terminal() {
			return c.finish(ctx, w, id, st)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// watch subscribes to the job's live SSE stream: every status event
// becomes a progress line on stderr, and the terminal state resolves
// exactly like wait — the done job's result bytes go to w, so
// `jobs watch` and `jobs wait` are byte-identical on stdout. If the
// server drains mid-stream (or the stream drops), one final status poll
// settles the outcome.
func (c jobsClient) watch(ctx context.Context, w io.Writer, id string) error {
	if err := requireID("watch", id); err != nil {
		return err
	}
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET /v1/jobs/%s: %s: %s", id, resp.Status, strings.TrimSpace(string(payload)))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("jobs watch: server answered %q, not an event stream (is it a serve instance?)", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var event, data string
	drained := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var st job.Status
			if err := json.Unmarshal([]byte(data), &st); err != nil {
				return fmt.Errorf("jobs watch: decoding event: %w", err)
			}
			if event == "drain" {
				drained = true
			} else {
				printStatus(os.Stderr, st)
				if st.State.Terminal() {
					return c.finish(ctx, w, id, st)
				}
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("jobs watch: stream: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// The stream closed without a terminal event — the server drained or
	// the connection dropped. One status poll settles the outcome.
	st, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		if drained {
			return fmt.Errorf("jobs watch: server drained mid-stream; job %s unresolved: %w", id, err)
		}
		return fmt.Errorf("jobs watch: stream closed; job %s unresolved: %w", id, err)
	}
	if st.State.Terminal() {
		return c.finish(ctx, w, id, st)
	}
	return fmt.Errorf("jobs watch: stream closed with job %s still %s (rerun `coldtall jobs wait %s`)", id, st.State, id)
}

// finish resolves a terminal status the way shell pipelines expect:
// done streams the result to w, failed and cancelled become errors.
func (c jobsClient) finish(ctx context.Context, w io.Writer, id string, st job.Status) error {
	switch st.State {
	case job.StateDone:
		return c.result(ctx, w, id)
	case job.StateFailed:
		return fmt.Errorf("job %s failed: %s", id, st.Error)
	default:
		return fmt.Errorf("job %s was cancelled", id)
	}
}

// result streams the done job's payload verbatim.
func (c jobsClient) result(ctx context.Context, w io.Writer, id string) error {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET /v1/jobs/%s/result: %s: %s", id, resp.Status, strings.TrimSpace(string(payload)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func (c jobsClient) cancel(ctx context.Context, w io.Writer, id string) error {
	if err := requireID("cancel", id); err != nil {
		return err
	}
	st, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	printStatus(w, st)
	return nil
}

// printStatus renders one job as a single parseable line: ID first, then
// state, progress, and kind.
func printStatus(w io.Writer, st job.Status) {
	line := fmt.Sprintf("%s  %-9s  %d/%d  %s", st.ID, st.State, st.Done, st.Total, st.Kind)
	if st.Artifact != "" {
		line += " " + st.Artifact
	}
	if st.Resumed > 0 {
		line += fmt.Sprintf("  (resumed %d from checkpoint)", st.Resumed)
	}
	if st.Error != "" {
		line += "  error: " + st.Error
	}
	fmt.Fprintln(w, line)
}
