package main

// CLI tests for the workloads subcommand family, run against a real server
// mounted on an httptest listener.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coldtall/internal/workload"
)

const ingestSpecJSON = `{
  "name": "cli1",
  "description": "cli upload",
  "generator": {"pattern": "stream", "working_set_bytes": 67108864, "write_frac": 0.25, "accesses": 40000, "seed": 7}
}`

func TestWorkloadsAddListTraffic(t *testing.T) {
	url := startJobServer(t)
	spec := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(spec, []byte(ingestSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	// add submits the spec, waits for the ingest job, and prints the record.
	var add strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "-poll", "10ms", "add", spec}, &add); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(add.String(), "cli1") || !strings.Contains(add.String(), "profile") {
		t.Errorf("add output %q missing the registered record", add.String())
	}

	// list shows the 23 static entries plus the upload.
	var list strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "list"}, &list); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(list.String()), "\n") + 1
	if want := len(workload.StaticTraffic()) + 1; lines != want {
		t.Errorf("list printed %d lines, want %d", lines, want)
	}
	if !strings.Contains(list.String(), "cli1") {
		t.Errorf("list output missing the ingested workload:\n%s", list.String())
	}

	// traffic prints the derived rates for both ingested and static names.
	var tr strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "traffic", "cli1"}, &tr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reads/s", "writes/s", "accesses  = 40000", "sha256:"} {
		if !strings.Contains(tr.String(), want) {
			t.Errorf("traffic output missing %q:\n%s", want, tr.String())
		}
	}
	tr.Reset()
	if err := run(bg, []string{"workloads", "-server", url, "traffic", "mcf"}, &tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "static") {
		t.Errorf("static traffic output = %q", tr.String())
	}
}

func TestWorkloadsErrors(t *testing.T) {
	url := startJobServer(t)

	// add demands a spec argument; traffic demands a name.
	var b strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "add"}, &b); err == nil || !strings.Contains(err.Error(), "spec file") {
		t.Errorf("add without a spec: err = %v", err)
	}
	if err := run(bg, []string{"workloads", "-server", url, "traffic"}, &b); err == nil || !strings.Contains(err.Error(), "name is required") {
		t.Errorf("traffic without a name: err = %v", err)
	}

	// unknown verb names itself
	if err := run(bg, []string{"workloads", "-server", url, "frobnicate"}, &b); err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("unknown verb: err = %v", err)
	}

	// unknown workload surfaces the server's 404
	if err := run(bg, []string{"workloads", "-server", url, "traffic", "ghost"}, &b); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown workload: err = %v", err)
	}

	// a reserved static name is rejected at submit (server 400)
	spec := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(spec, []byte(`{"name":"mcf","generator":{"pattern":"stream","working_set_bytes":1048576,"accesses":5000}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bg, []string{"workloads", "-server", url, "add", spec}, &b); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("reserved name: err = %v", err)
	}
}
