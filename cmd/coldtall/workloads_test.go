package main

// CLI tests for the workloads subcommand family, run against a real server
// mounted on an httptest listener.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coldtall/internal/workload"
)

const ingestSpecJSON = `{
  "name": "cli1",
  "description": "cli upload",
  "generator": {"pattern": "stream", "working_set_bytes": 67108864, "write_frac": 0.25, "accesses": 40000, "seed": 7}
}`

func TestWorkloadsAddListTraffic(t *testing.T) {
	url := startJobServer(t)
	spec := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(spec, []byte(ingestSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	// add submits the spec, waits for the ingest job, and prints the record.
	var add strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "-poll", "10ms", "add", spec}, &add); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(add.String(), "cli1") || !strings.Contains(add.String(), "profile") {
		t.Errorf("add output %q missing the registered record", add.String())
	}

	// list shows the 23 static entries plus the upload.
	var list strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "list"}, &list); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(list.String()), "\n") + 1
	if want := len(workload.StaticTraffic()) + 1; lines != want {
		t.Errorf("list printed %d lines, want %d", lines, want)
	}
	if !strings.Contains(list.String(), "cli1") {
		t.Errorf("list output missing the ingested workload:\n%s", list.String())
	}

	// traffic prints the derived rates for both ingested and static names.
	var tr strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "traffic", "cli1"}, &tr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reads/s", "writes/s", "accesses  = 40000", "sha256:"} {
		if !strings.Contains(tr.String(), want) {
			t.Errorf("traffic output missing %q:\n%s", want, tr.String())
		}
	}
	tr.Reset()
	if err := run(bg, []string{"workloads", "-server", url, "traffic", "mcf"}, &tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "static") {
		t.Errorf("static traffic output = %q", tr.String())
	}
}

// TestWorkloadsIntelVerbs drives the workload-intelligence verb family —
// sig, similar, distill, rm — through the CLI against a store-backed
// server, including the alias flow a deduplicated re-upload produces.
func TestWorkloadsIntelVerbs(t *testing.T) {
	url := startJobServer(t)
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	add := func(spec string) {
		t.Helper()
		var b strings.Builder
		if err := run(bg, []string{"workloads", "-server", url, "-poll", "10ms", "add", spec}, &b); err != nil {
			t.Fatalf("add %s: %v\n%s", spec, err, b.String())
		}
	}

	// Two byte-identical generator uploads: the second dedups to an alias.
	gen := `"generator": {"pattern": "stream", "working_set_bytes": 67108864, "write_frac": 0.25, "accesses": 40000, "seed": 7}`
	add(write("orig.json", `{"name": "intel1", `+gen+`}`))
	add(write("copy.json", `{"name": "intel2", `+gen+`}`))

	// sig prints the replay-time locality signature; the alias resolves to
	// its canonical workload.
	var sig strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "sig", "intel1"}, &sig); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workload  = intel1", "sha256", "accesses  = 40000", "footprint"} {
		if !strings.Contains(sig.String(), want) {
			t.Errorf("sig output missing %q:\n%s", want, sig.String())
		}
	}
	if strings.Contains(sig.String(), "canonical") {
		t.Errorf("canonical sig output should not mention an alias:\n%s", sig.String())
	}
	sig.Reset()
	if err := run(bg, []string{"workloads", "-server", url, "sig", "intel2"}, &sig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sig.String(), "canonical = intel1 (alias)") {
		t.Errorf("alias sig output missing the canonical resolution:\n%s", sig.String())
	}

	// similar ranks canonical entries only, so the alias does not show up
	// as a spurious zero-distance neighbour.
	var sim strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "similar", "intel1"}, &sim); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sim.String(), "no other workloads") {
		t.Errorf("similar should find no canonical neighbours:\n%s", sim.String())
	}

	// rm refuses the canonical entry while its alias lives, then removes
	// both in dependency order.
	var b strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "rm", "intel1"}, &b); err == nil || !strings.Contains(err.Error(), "intel2") {
		t.Errorf("rm canonical with alias: err = %v", err)
	}
	b.Reset()
	if err := run(bg, []string{"workloads", "-server", url, "rm", "intel2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "removed intel2 (alias)") {
		t.Errorf("rm alias output = %q", b.String())
	}
	b.Reset()
	if err := run(bg, []string{"workloads", "-server", url, "rm", "intel1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "removed intel1") {
		t.Errorf("rm canonical output = %q", b.String())
	}

	// distill fits a generator to the stored trace and prints the fit; a
	// profile-derived trace recovers within the pinned tolerance, so the
	// trace bytes are replaced by the spec.
	add(write("prof.json", `{"name": "intel3", "generator": {"profile": "mcf", "accesses": 65536, "seed": 1}}`))
	var dis strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "-poll", "10ms", "distill", "intel3"}, &dis); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workload  = intel3", "accepted  = true", "deleted true", "spec      = {"} {
		if !strings.Contains(dis.String(), want) {
			t.Errorf("distill output missing %q:\n%s", want, dis.String())
		}
	}

	// The intelligence verbs demand a name and surface server refusals.
	for _, verb := range []string{"sig", "similar", "distill", "rm"} {
		if err := run(bg, []string{"workloads", "-server", url, verb}, &b); err == nil || !strings.Contains(err.Error(), "name is required") {
			t.Errorf("%s without a name: err = %v", verb, err)
		}
	}
	if err := run(bg, []string{"workloads", "-server", url, "rm", "mcf"}, &b); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("rm static: err = %v", err)
	}
	if err := run(bg, []string{"workloads", "-server", url, "sig", "ghost"}, &b); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("sig unknown: err = %v", err)
	}
	if err := run(bg, []string{"workloads", "-server", url, "distill", "ghost"}, &b); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("distill unknown: err = %v", err)
	}
}

func TestWorkloadsErrors(t *testing.T) {
	url := startJobServer(t)

	// add demands a spec argument; traffic demands a name.
	var b strings.Builder
	if err := run(bg, []string{"workloads", "-server", url, "add"}, &b); err == nil || !strings.Contains(err.Error(), "spec file") {
		t.Errorf("add without a spec: err = %v", err)
	}
	if err := run(bg, []string{"workloads", "-server", url, "traffic"}, &b); err == nil || !strings.Contains(err.Error(), "name is required") {
		t.Errorf("traffic without a name: err = %v", err)
	}

	// unknown verb names itself
	if err := run(bg, []string{"workloads", "-server", url, "frobnicate"}, &b); err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("unknown verb: err = %v", err)
	}

	// unknown workload surfaces the server's 404
	if err := run(bg, []string{"workloads", "-server", url, "traffic", "ghost"}, &b); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown workload: err = %v", err)
	}

	// a reserved static name is rejected at submit (server 400)
	spec := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(spec, []byte(`{"name":"mcf","generator":{"pattern":"stream","working_set_bytes":1048576,"accesses":5000}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bg, []string{"workloads", "-server", url, "add", spec}, &b); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("reserved name: err = %v", err)
	}
}
