package coldtall

import (
	"strings"
	"testing"
)

func TestAllClaimsReproduce(t *testing.T) {
	results := study(t).Verify()
	if len(results) < 20 {
		t.Fatalf("checklist has %d claims, want the full set", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("duplicate claim id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
			continue
		}
		if !r.Pass {
			t.Errorf("%s (%s): measured %s, expected %s", r.ID, r.Text, r.Measured, r.Expected)
		}
		if r.Measured == "" {
			t.Errorf("%s: empty measurement", r.ID)
		}
	}
}

func TestRenderVerify(t *testing.T) {
	var b strings.Builder
	if err := study(t).RenderVerify(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "claims reproduced") {
		t.Error("missing summary line")
	}
	if strings.Contains(out, "FAIL") || strings.Contains(out, "ERROR") {
		t.Error("checklist reports failures")
	}
}
