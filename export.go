package coldtall

import (
	"fmt"
	"os"
	"path/filepath"

	"coldtall/internal/parallel"
	"coldtall/internal/report"
)

// Export writes every registry artifact as a CSV file into dir (created if
// missing): fig1.csv, fig3.csv, fig4.csv, fig5.csv, fig6.csv, fig7.csv,
// table1.csv, table2.csv, cooling.csv, coldtall.csv, reliability.csv —
// ready for external plotting against the paper's figures. The file set is
// the artifact registry in paper order; there is no per-artifact export
// code to keep in sync.
//
// Independent artifacts build concurrently on the study's worker pool
// (SetParallelism); the files themselves are written serially in paper
// order, and their contents are identical at any parallelism setting.
func (s *Study) Export(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	descriptors := artifacts.Descriptors()
	tables, err := parallel.MapContext(s.context(), len(descriptors), s.parallelism, func(i int) (*report.Table, error) {
		return artifacts.Build(s.context(), s, descriptors[i].Name)
	})
	if err != nil {
		return err
	}
	for i, d := range descriptors {
		f, err := os.Create(filepath.Join(dir, d.File))
		if err != nil {
			return err
		}
		if err := tables[i].RenderCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", d.File, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
