package coldtall

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"coldtall/internal/parallel"
	"coldtall/internal/report"
)

// exportArtifact is one Export output: a file name and its builder.
type exportArtifact struct {
	name  string
	build func() (*report.Table, error)
}

// exportArtifacts lists every CSV artifact in paper order. Order matters
// twice: files are written in this order, and a serial export builds them
// in this order — the parallel export must be indistinguishable.
func (s *Study) exportArtifacts() []exportArtifact {
	return []exportArtifact{
		{"fig1.csv", s.fig1CSV},
		{"fig3.csv", s.fig3CSV},
		{"fig4.csv", s.fig4CSV},
		{"fig5.csv", func() (*report.Table, error) { return s.trafficCSV(s.Fig5) }},
		{"fig6.csv", s.fig6CSV},
		{"fig7.csv", func() (*report.Table, error) { return s.trafficCSV(s.Fig7) }},
		{"table1.csv", table1CSV},
		{"table2.csv", s.table2CSV},
		{"cooling.csv", s.coolingCSV},
		{"coldtall.csv", s.coldAndTallCSV},
		{"reliability.csv", s.reliabilityCSV},
	}
}

// ArtifactNames lists every exportable artifact name ("fig1.csv", ...,
// "reliability.csv") in paper order.
func (s *Study) ArtifactNames() []string {
	artifacts := s.exportArtifacts()
	names := make([]string, len(artifacts))
	for i, a := range artifacts {
		names[i] = a.name
	}
	return names
}

// ArtifactTable builds one export artifact by name and returns it as a
// table — the writer-agnostic form Export and the HTTP server both render
// from (CSV to a file or response body, JSON as columns + rows).
func (s *Study) ArtifactTable(name string) (*report.Table, error) {
	for _, a := range s.exportArtifacts() {
		if a.name == name {
			t, err := a.build()
			if err != nil {
				return nil, fmt.Errorf("building %s: %w", name, err)
			}
			return t, nil
		}
	}
	return nil, fmt.Errorf("unknown artifact %q (want one of %v)", name, s.ArtifactNames())
}

// RenderArtifactCSV builds one artifact by name and streams it as CSV.
func (s *Study) RenderArtifactCSV(w io.Writer, name string) error {
	t, err := s.ArtifactTable(name)
	if err != nil {
		return err
	}
	return t.RenderCSV(w)
}

// Export writes every figure and table as CSV files into dir (created if
// missing): fig1.csv, fig3.csv, fig4.csv, fig5.csv, fig6.csv, fig7.csv,
// table1.csv, table2.csv, cooling.csv, coldtall.csv, reliability.csv —
// ready for external plotting against the paper's figures.
//
// Independent artifacts build concurrently on the study's worker pool
// (SetParallelism); the files themselves are written serially in paper
// order, and their contents are identical at any parallelism setting.
func (s *Study) Export(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	artifacts := s.exportArtifacts()
	tables, err := parallel.MapContext(s.context(), len(artifacts), s.parallelism, func(i int) (*report.Table, error) {
		t, err := artifacts[i].build()
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", artifacts[i].name, err)
		}
		return t, nil
	})
	if err != nil {
		return err
	}
	for i, a := range artifacts {
		f, err := os.Create(filepath.Join(dir, a.name))
		if err != nil {
			return err
		}
		if err := tables[i].RenderCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", a.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func f(v float64) string { return fmt.Sprintf("%g", v) }

func (s *Study) fig1CSV() (*report.Table, error) {
	rows, err := s.Fig1()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "temperature_k", "rel_device_power", "rel_total_power")
	for _, r := range rows {
		t.AddRow(f(r.TemperatureK), f(r.RelDevicePower), f(r.RelTotalPower))
	}
	return t, nil
}

func (s *Study) fig3CSV() (*report.Table, error) {
	rows, err := s.Fig3()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "cell", "temperature_k",
		"rel_read_latency", "rel_write_latency", "rel_read_energy", "rel_write_energy",
		"rel_leakage", "retention_s")
	for _, r := range rows {
		t.AddRow(r.Cell, f(r.TemperatureK), f(r.RelReadLatency), f(r.RelWriteLatency),
			f(r.RelReadEnergy), f(r.RelWriteEnergy), f(r.RelLeakagePower), f(r.RetentionS))
	}
	return t, nil
}

func (s *Study) fig4CSV() (*report.Table, error) {
	rows, err := s.Fig4()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "benchmark", "cell", "rel_350k", "rel_77k", "rel_77k_cooled")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Cell, f(r.Rel350K), f(r.Rel77K), f(r.Rel77KCooled))
	}
	return t, nil
}

func (s *Study) trafficCSV(gen func() ([]TrafficRow, error)) (*report.Table, error) {
	rows, err := gen()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "design_point", "cell", "temperature_k", "dies",
		"benchmark", "reads_per_sec", "writes_per_sec",
		"rel_device_power", "rel_total_power", "rel_latency", "slowdown")
	for _, r := range rows {
		t.AddRow(r.Label, r.Cell, f(r.TemperatureK), fmt.Sprintf("%d", r.Dies),
			r.Benchmark, f(r.ReadsPerSec), f(r.WritesPerSec),
			f(r.RelDevicePower), f(r.RelTotalPower), f(r.RelLatency),
			fmt.Sprintf("%v", r.Slowdown))
	}
	return t, nil
}

func (s *Study) fig6CSV() (*report.Table, error) {
	rows, err := s.Fig6()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "design_point", "tech", "corner", "dies",
		"rel_area", "rel_read_energy", "rel_write_energy",
		"rel_read_latency", "rel_write_latency", "rel_leakage")
	for _, r := range rows {
		t.AddRow(r.Label, r.Tech, r.Corner, fmt.Sprintf("%d", r.Dies),
			f(r.RelArea), f(r.RelReadEnergy), f(r.RelWriteEnergy),
			f(r.RelReadLatency), f(r.RelWriteLatency), f(r.RelLeakagePower))
	}
	return t, nil
}

func table1CSV() (*report.Table, error) {
	t := report.NewTable("", "parameter", "value")
	for _, r := range Table1() {
		t.AddRow(r.Parameter, r.Value)
	}
	return t, nil
}

func (s *Study) table2CSV() (*report.Table, error) {
	rows, err := s.Table2()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "band", "objective", "winner", "alternative",
		"winner_350k_family", "alternative_350k_family", "endurance_concern", "metric")
	for _, r := range rows {
		t.AddRow(r.Band, r.Objective, r.Winner, r.Alternative,
			r.Winner3D, r.Alternative3D, fmt.Sprintf("%v", r.EnduranceConcern), f(r.Metric))
	}
	return t, nil
}

func (s *Study) coolingCSV() (*report.Table, error) {
	rows, err := s.CoolingSweep()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "cooler", "overhead", "benchmark", "reads_per_sec", "rel_total_power")
	for _, r := range rows {
		t.AddRow(r.Cooler, f(r.Overhead), r.Benchmark, f(r.ReadsPerSec), f(r.RelTotalPower))
	}
	return t, nil
}

func (s *Study) coldAndTallCSV() (*report.Table, error) {
	t := report.NewTable("", "benchmark", "design_point", "cell", "dies", "temperature_k",
		"rel_total_power", "rel_latency", "rel_area")
	for _, bench := range BandRepresentatives() {
		rows, err := s.ColdAndTall(bench)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			t.AddRow(r.Benchmark, r.Label, r.Cell, fmt.Sprintf("%d", r.Dies),
				f(r.TemperatureK), f(r.RelTotalPower), f(r.RelLatency), f(r.RelArea))
		}
	}
	return t, nil
}

func (s *Study) reliabilityCSV() (*report.Table, error) {
	rows, err := s.ReliabilityStudy()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("", "benchmark", "writes_per_sec", "design_point",
		"soft_fit", "wear_lifetime_years", "weak_bits_per_refresh")
	for _, r := range rows {
		t.AddRow(r.Benchmark, f(r.WritesPerSec), r.Label,
			f(r.SoftFIT), f(r.WearLifetimeYears), f(r.RetentionWeakBits))
	}
	return t, nil
}
