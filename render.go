package coldtall

import (
	"fmt"
	"io"

	"coldtall/internal/report"
)

// RenderFig1 prints Fig. 1 as a table.
func (s *Study) RenderFig1(w io.Writer) error {
	rows, err := s.Fig1()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Fig. 1: Total LLC power of SRAM running SPEC2017.namd vs temperature (relative to 350K SRAM)",
		"T (K)", "rel power", "rel power incl cooling")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f", r.TemperatureK),
			report.Rel(r.RelDevicePower), report.Rel(r.RelTotalPower))
	}
	return t.Render(w)
}

// RenderFig3 prints Fig. 3 as a table.
func (s *Study) RenderFig3(w io.Writer) error {
	rows, err := s.Fig3()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Fig. 3: Array-level characterization vs temperature (relative to 350K SRAM)",
		"cell", "T (K)", "rd lat", "wr lat", "rd E/b", "wr E/b", "leakage", "retention")
	for _, r := range rows {
		ret := "static"
		if r.RetentionS < 1e12 {
			ret = report.Eng(r.RetentionS, "s")
		}
		t.AddRow(r.Cell, fmt.Sprintf("%.0f", r.TemperatureK),
			report.Rel(r.RelReadLatency), report.Rel(r.RelWriteLatency),
			report.Rel(r.RelReadEnergy), report.Rel(r.RelWriteEnergy),
			report.Rel(r.RelLeakagePower), ret)
	}
	return t.Render(w)
}

// RenderFig4 prints Fig. 4 as a table.
func (s *Study) RenderFig4(w io.Writer) error {
	rows, err := s.Fig4()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Fig. 4: Total LLC power, namd vs leela (relative to 350K SRAM running namd)",
		"benchmark", "cell", "350K", "77K", "77K+cooling")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Cell,
			report.Rel(r.Rel350K), report.Rel(r.Rel77K), report.Rel(r.Rel77KCooled))
	}
	return t.Render(w)
}

// renderTraffic prints a Fig. 5 / Fig. 7 row set as a table plus two
// log-log scatter plots (power vs reads/s, latency vs writes/s).
func renderTraffic(w io.Writer, title string, rows []TrafficRow, plot bool) error {
	t := report.NewTable(title,
		"design point", "benchmark", "reads/s", "writes/s",
		"rel power", "rel power+cooling", "rel latency", "slowdown")
	for _, r := range rows {
		t.AddRow(r.Label, r.Benchmark,
			fmt.Sprintf("%.3g", r.ReadsPerSec), fmt.Sprintf("%.3g", r.WritesPerSec),
			report.Rel(r.RelDevicePower), report.Rel(r.RelTotalPower),
			report.Rel(r.RelLatency), fmt.Sprintf("%v", r.Slowdown))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if !plot {
		return nil
	}
	power := report.NewScatter("Total LLC power vs read traffic", "read accesses/s", "power rel. to 350K SRAM (namd)")
	latency := report.NewScatter("Total LLC latency vs write traffic", "write accesses/s", "latency rel. to 350K SRAM (namd)")
	byLabel := map[string]int{}
	var order []string
	for _, r := range rows {
		if _, ok := byLabel[r.Label]; !ok {
			byLabel[r.Label] = len(order)
			order = append(order, r.Label)
		}
	}
	for _, label := range order {
		var px, py, lx, ly []float64
		for _, r := range rows {
			if r.Label != label {
				continue
			}
			px = append(px, r.ReadsPerSec)
			py = append(py, r.RelTotalPower)
			lx = append(lx, r.WritesPerSec)
			ly = append(ly, r.RelLatency)
		}
		if err := power.Add(report.Series{Name: label, X: px, Y: py}); err != nil {
			return err
		}
		if err := latency.Add(report.Series{Name: label, X: lx, Y: ly}); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := power.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return latency.Render(w)
}

// RenderFig5 prints Fig. 5 (table + scatters when plot is true).
func (s *Study) RenderFig5(w io.Writer, plot bool) error {
	rows, err := s.Fig5()
	if err != nil {
		return err
	}
	return renderTraffic(w,
		"Fig. 5: Total LLC power and latency for SPEC2017, 77K vs 350K (relative to 350K SRAM running namd)",
		rows, plot)
}

// RenderFig6 prints Fig. 6 as a table.
func (s *Study) RenderFig6(w io.Writer) error {
	rows, err := s.Fig6()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Fig. 6: Array-level characterization of 2D/3D eNVMs at 350K (relative to 1-die SRAM)",
		"design point", "area", "rd E/b", "wr E/b", "rd lat", "wr lat", "leakage")
	for _, r := range rows {
		t.AddRow(r.Label, report.Rel(r.RelArea),
			report.Rel(r.RelReadEnergy), report.Rel(r.RelWriteEnergy),
			report.Rel(r.RelReadLatency), report.Rel(r.RelWriteLatency),
			report.Rel(r.RelLeakagePower))
	}
	return t.Render(w)
}

// RenderFig7 prints Fig. 7 (table + scatters when plot is true).
func (s *Study) RenderFig7(w io.Writer, plot bool) error {
	rows, err := s.Fig7()
	if err != nil {
		return err
	}
	return renderTraffic(w,
		"Fig. 7: Total LLC power and latency for 2D/3D eNVMs at 350K (relative to 350K SRAM running namd)",
		rows, plot)
}

// RenderTable1 prints Table I.
func RenderTable1(w io.Writer) error {
	t := report.NewTable("Table I: Key CPU model parameters", "parameter", "value")
	for _, r := range Table1() {
		t.AddRow(r.Parameter, r.Value)
	}
	return t.Render(w)
}

// RenderTable2 prints Table II.
func (s *Study) RenderTable2(w io.Writer) error {
	rows, err := s.Table2()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Table II: Optimal LLC per read-traffic regime and design target",
		"reads/s", "target", "optimal LLC", "alt", "350K-family optimal", "350K-family alt")
	for _, r := range rows {
		t.AddRow(r.Band, r.Objective, r.Winner, r.Alternative, r.Winner3D, r.Alternative3D)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "\n  'alt' appears when the winner's write endurance limits lifetime; the\n  350K-family columns restrict candidates to the Destiny-framework points\n  the paper's performance column reports (see EXPERIMENTS.md).")
	return err
}

// RenderCoolingSweep prints the Section III-C sensitivity.
func (s *Study) RenderCoolingSweep(w io.Writer) error {
	rows, err := s.CoolingSweep()
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Cooling-overhead sensitivity: 77K 3T-eDRAM vs 350K SRAM (same benchmark; <1 = cryo wins)",
		"cooler", "overhead", "benchmark", "reads/s", "rel total power")
	for _, r := range rows {
		t.AddRow(r.Cooler, fmt.Sprintf("%.2f", r.Overhead), r.Benchmark,
			fmt.Sprintf("%.3g", r.ReadsPerSec), report.Rel(r.RelTotalPower))
	}
	return t.Render(w)
}

// RenderColdAndTall prints the Section VI combined cryogenic + 3D study for
// the three band-representative benchmarks.
func (s *Study) RenderColdAndTall(w io.Writer) error {
	for _, bench := range BandRepresentatives() {
		rows, sum, err := s.renderColdAndTallRows(bench)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("Cold AND tall (Sec. VI future work) under %s traffic (relative to 350K 1-die SRAM on namd)", bench),
			"design point", "rel power+cooling", "rel latency", "rel area")
		for _, r := range rows {
			t.AddRow(r.Label, report.Rel(r.RelTotalPower), report.Rel(r.RelLatency), report.Rel(r.RelArea))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"  verdict: power winner %s (%.4g), latency winner %s (%.4g); best warm eNVM %s (%.4g)\n\n",
			sum.PowerWinner.Label, sum.PowerWinner.RelTotalPower,
			sum.LatencyWinner.Label, sum.LatencyWinner.RelLatency,
			sum.WarmENVMLabel, sum.WarmENVMPower); err != nil {
			return err
		}
	}
	return nil
}
