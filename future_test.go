package coldtall

import (
	"strings"
	"testing"
)

func TestColdAndTallGridShape(t *testing.T) {
	rows, err := study(t).ColdAndTall("povray")
	if err != nil {
		t.Fatal(err)
	}
	// 2 cells x 4 die counts x 2 temperatures.
	if len(rows) != 16 {
		t.Fatalf("grid has %d rows, want 16", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Label] {
			t.Errorf("duplicate point %s", r.Label)
		}
		seen[r.Label] = true
		if r.RelTotalPower <= 0 || r.RelLatency <= 0 || r.RelArea <= 0 {
			t.Errorf("%s: non-positive relatives", r.Label)
		}
	}
}

func TestColdAndTallCombinationWinsLowTraffic(t *testing.T) {
	// The paper's Section VI hypothesis: combining cryogenic operation
	// with 3D stacking yields "both highly performant and low
	// power/temperature chips". At low traffic the 8-die 77 K 3T-eDRAM
	// should beat every single-lever point on both axes.
	sum, err := study(t).ColdAndTallVerdict("povray")
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range map[string]ColdAndTallRow{"power": sum.PowerWinner, "latency": sum.LatencyWinner} {
		if w.TemperatureK != 77 {
			t.Errorf("%s winner %s should be cryogenic", name, w.Label)
		}
		if w.Dies != 8 {
			t.Errorf("%s winner %s should be fully stacked", name, w.Label)
		}
		if w.Cell != "3T-eDRAM" {
			t.Errorf("%s winner %s should be the gain cell", name, w.Label)
		}
	}
	// And it must beat the best warm eNVM on power at this traffic.
	if sum.PowerWinner.RelTotalPower >= sum.WarmENVMPower {
		t.Errorf("cold+tall (%.3g) should beat the best warm eNVM (%.3g) at povray traffic",
			sum.PowerWinner.RelTotalPower, sum.WarmENVMPower)
	}
}

func TestColdAndTallHighTrafficFavorsWarm(t *testing.T) {
	// At mcf's traffic the cooling overhead should put the warm eNVM
	// ahead of any cryogenic combination on power.
	sum, err := study(t).ColdAndTallVerdict("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if sum.PowerWinner.TemperatureK == 77 {
		// The cryogenic grid winner may still be cold, but it must not
		// beat the warm eNVM.
		if sum.PowerWinner.RelTotalPower < sum.WarmENVMPower {
			t.Errorf("at mcf traffic warm eNVM (%.3g) should beat cold+tall (%.3g)",
				sum.WarmENVMPower, sum.PowerWinner.RelTotalPower)
		}
	}
}

func TestColdAndTallStackingHelpsLatencyAtBothTemperatures(t *testing.T) {
	rows, err := study(t).ColdAndTall("xalancbmk")
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ColdAndTallRow{}
	for _, r := range rows {
		byKey[r.Label] = r
	}
	for _, temp := range []string{"350K", "77K"} {
		one := byKey["1-die SRAM @"+temp]
		eight := byKey["8-die SRAM @"+temp]
		if eight.RelLatency >= one.RelLatency {
			t.Errorf("stacking should cut latency at %s", temp)
		}
	}
}

func TestBandRepresentatives(t *testing.T) {
	reps := BandRepresentatives()
	if len(reps) != 3 {
		t.Fatalf("got %d representatives, want 3", len(reps))
	}
	want := []string{"povray", "xalancbmk", "mcf"}
	for i, name := range want {
		if reps[i] != name {
			t.Errorf("representative[%d] = %s, want %s", i, reps[i], name)
		}
	}
}

func TestRenderColdAndTall(t *testing.T) {
	var b strings.Builder
	if err := study(t).RenderColdAndTall(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Cold AND tall", "verdict:", "8-die 3T-eDRAM @77K"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}
